(** Digest-keyed result cache of the partition service.

    The key is the canonical workload identity: the relabel-invariant
    {!Hypergraph.Hgraph.digest} of the (possibly delta-applied)
    hypergraph, the device name, the {!Fpart.Config.digest} of the
    effective configuration, and the multi-start breadth.  Two requests
    with the same key produce bit-identical partitions (the driver is
    deterministic in its seed, which the config digest covers), so the
    cached response can be replayed verbatim.  ECO and fault-injected
    requests bypass the cache entirely. *)

type t

val create : unit -> t

val key :
  netlist_digest:string ->
  device:string ->
  config_digest:string ->
  runs:int ->
  string

(** [find t key] returns the cached success and counts a hit/miss. *)
val find : t -> string -> Protocol.success option

val add : t -> string -> Protocol.success -> unit

val hits : t -> int

val misses : t -> int

val size : t -> int

(** Estimated retained bytes of all entries (key + string payloads +
    a flat per-entry allowance).  Feeds the [serve.cache.bytes_est]
    gauge and the [--cache-warn-mb] check: the cache is unbounded by
    design (results are bit-replayable), so its growth must at least
    be visible. *)
val bytes_est : t -> int
