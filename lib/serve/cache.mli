(** Digest-keyed result cache of the partition service.

    The key is the canonical workload identity: the relabel-invariant
    {!Hypergraph.Hgraph.digest} of the (possibly delta-applied)
    hypergraph, the device name, the {!Fpart.Config.digest} of the
    effective configuration, and the multi-start breadth.  Two requests
    with the same key produce bit-identical partitions (the driver is
    deterministic in its seed, which the config digest covers), so the
    cached response can be replayed verbatim.  ECO and fault-injected
    requests bypass the cache entirely. *)

type t

val create : unit -> t

val key :
  netlist_digest:string ->
  device:string ->
  config_digest:string ->
  runs:int ->
  string

(** [find t key] returns the cached success and counts a hit/miss. *)
val find : t -> string -> Protocol.success option

val add : t -> string -> Protocol.success -> unit

val hits : t -> int

val misses : t -> int

val size : t -> int
