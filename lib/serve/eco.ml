module Hg = Hypergraph.Hgraph
module State = Partition.State
module Cost = Partition.Cost

type projection = {
  matched : int;
  stale : int;
  filled : int;
  start_violations : int;
}

type outcome =
  | Warm of {
      assignment : int array;
      k : int;
      cut : int;
      total_pins : int;
      m_lower : int;
      projection : projection;
    }
  | Cold_needed of string

(* Project the partfile onto [hg] by node name.  Unknown names are the
   delta's removals (dropped, counted as stale); an out-of-range block
   is a genuinely malformed partfile and errors with its source line. *)
let project (pf : Netlist.Partfile.t) hg ~k =
  let by_name = Hashtbl.create (Hg.num_nodes hg * 2) in
  Hg.iter_nodes (fun v -> Hashtbl.replace by_name (Hg.name hg v) v) hg;
  let assignment = Array.make (Hg.num_nodes hg) (-1) in
  let matched = ref 0 and stale = ref 0 in
  let error = ref None in
  List.iteri
    (fun i (name, b) ->
      if !error = None then
        if b < 0 || b >= k then
          let pos =
            match List.nth_opt pf.Netlist.Partfile.node_lines i with
            | Some line -> Printf.sprintf "line %d" line
            | None -> Printf.sprintf "entry %d" (i + 1)
          in
          error :=
            Some
              (Printf.sprintf "%s: node %S assigned to block %d outside [0, %d)"
                 pos name b k)
        else
          match Hashtbl.find_opt by_name name with
          | Some v ->
            assignment.(v) <- b;
            incr matched
          | None -> incr stale)
    pf.Netlist.Partfile.assignment;
  match !error with
  | Some e -> Error e
  | None -> Ok (assignment, !matched, !stale)

(* Place the delta's additions: each unassigned node goes to the block
   holding most of its already-placed net neighbours; isolated nodes go
   to the smallest block.  Node-id order keeps this deterministic. *)
let fill_unassigned hg ~k assignment =
  let sizes = Array.make k 0 in
  Array.iteri
    (fun v b -> if b >= 0 then sizes.(b) <- sizes.(b) + Hg.size hg v)
    assignment;
  let filled = ref 0 in
  let votes = Array.make k 0 in
  Hg.iter_nodes
    (fun v ->
      if assignment.(v) < 0 then begin
        Array.fill votes 0 k 0;
        Array.iter
          (fun e ->
            Array.iter
              (fun u -> if assignment.(u) >= 0 then
                  votes.(assignment.(u)) <- votes.(assignment.(u)) + 1)
              (Hg.pins hg e))
          (Hg.nets_of hg v);
        let best = ref 0 in
        for b = 1 to k - 1 do
          if votes.(b) > votes.(!best) then best := b
        done;
        let b =
          if votes.(!best) > 0 then !best
          else begin
            let smallest = ref 0 in
            for b = 1 to k - 1 do
              if sizes.(b) < sizes.(!smallest) then smallest := b
            done;
            !smallest
          end
        in
        assignment.(v) <- b;
        sizes.(b) <- sizes.(b) + Hg.size hg v;
        incr filled
      end)
    hg;
  !filled

let relegalize ?(passes = 4) ?fallback_violations ~config ~device ~partfile hg =
  let k = Array.length partfile.Netlist.Partfile.block_devices in
  if k < 1 then Error "partition file has no blocks"
  else
    match project partfile hg ~k with
    | Error e -> Error e
    | Ok (assignment, matched, stale) ->
      if matched = 0 then
        Ok (Cold_needed "no partfile entry matches the delta'd netlist")
      else begin
        let filled = fill_unassigned hg ~k assignment in
        let delta = Fpart.Config.delta_for config device in
        let ctx = Cost.context_of device ~delta hg in
        let st = State.create hg ~k ~assign:(fun v -> assignment.(v)) in
        let violating st =
          match Cost.classify ctx st with
          | Cost.Feasible -> []
          | Cost.Semi_feasible i -> [ i ]
          | Cost.Infeasible l -> l
        in
        let start_violations = List.length (violating st) in
        let threshold =
          match fallback_violations with Some t -> t | None -> max 1 (k / 2)
        in
        if start_violations > threshold then
          Ok
            (Cold_needed
               (Printf.sprintf
                  "projected start too damaged: %d of %d blocks violate \
                   constraints (threshold %d)"
                  start_violations k threshold))
        else begin
          let config =
            { config with Fpart.Config.max_passes = min passes config.Fpart.Config.max_passes }
          in
          if start_violations > 0 || filled > 0 || stale > 0 then
            Fpart.Driver.refine config ctx st;
          match Cost.classify ctx st with
          | Cost.Feasible ->
            Ok
              (Warm
                 {
                   assignment = State.assignment st;
                   k;
                   cut = State.cut_size st;
                   total_pins = State.total_pins st;
                   m_lower = ctx.Cost.m_lower;
                   projection =
                     { matched; stale; filled; start_violations };
                 })
          | _ ->
            Ok
              (Cold_needed
                 (Printf.sprintf
                    "still infeasible after %d bounded refinement pass(es)"
                    passes))
        end
      end
