(** ECO warm-start: re-legalize a stale partition on a delta'd netlist.

    The cheap path for engineering change orders: instead of
    re-partitioning from scratch, project the previous assignment onto
    the edited hypergraph by node name (entries naming removed nodes are
    dropped, added nodes are placed by neighbour vote), then run a
    bounded {!Fpart.Driver.refine} to repair the damage the edit did to
    the block constraints.  When the projected start is infeasible
    beyond a threshold — or refinement cannot reach feasibility — the
    caller falls back to a cold run. *)

type projection = {
  matched : int;  (** Partfile entries applied to a surviving node. *)
  stale : int;  (** Entries naming nodes the delta removed. *)
  filled : int;  (** Nodes absent from the partfile, neighbour-placed. *)
  start_violations : int;  (** Violating blocks before refinement. *)
}

type outcome =
  | Warm of {
      assignment : int array;
      k : int;
      cut : int;
      total_pins : int;
      m_lower : int;
      projection : projection;
    }  (** Feasible after bounded refinement — use as-is. *)
  | Cold_needed of string
      (** Warm start not viable (reason); run the cold path. *)

(** [relegalize ~config ~device ~partfile hg] projects [partfile] onto
    the (already delta-applied) hypergraph [hg] and repairs it.

    [passes] (default 4) bounds the refinement intensity
    ([config.max_passes] is clamped to it).  [fallback_violations]
    (default [max 1 (k/2)]) is the infeasibility threshold: more
    violating blocks than this at the projected start trigger
    {!Cold_needed} without attempting refinement.

    [Error msg] on a malformed partfile (no blocks, out-of-range block
    index — messages carry the partfile line when available). *)
val relegalize :
  ?passes:int ->
  ?fallback_violations:int ->
  config:Fpart.Config.t ->
  device:Device.t ->
  partfile:Netlist.Partfile.t ->
  Hypergraph.Hgraph.t ->
  (outcome, string) result
