module Hg = Hypergraph.Hgraph
module Json = Fpart_obs.Json
module Metrics = Fpart_obs.Metrics
module Recorder = Fpart_obs.Recorder

module Expose = Fpart_obs.Expose

let c_requests = Metrics.counter "serve.requests"
let c_cache_hits = Metrics.counter "serve.cache_hits"
let c_errors = Metrics.counter "serve.errors"
let c_eco_warm = Metrics.counter "serve.eco_warm"
let c_eco_fallback = Metrics.counter "serve.eco_fallback"
let c_cache_warnings = Metrics.counter "serve.cache.warnings"
let h_cold = Metrics.histogram "serve.latency.cold_ms"
let h_warm = Metrics.histogram "serve.latency.warm_ms"

let now = Unix.gettimeofday

type t = {
  pool : Fpart_exec.Pool.t;
  cache : Cache.t;
  jobs : int;
  timeout_s : float option;
  mutable served : int;
  mutable next_rid : int;  (* request-id mint, monotone per engine *)
  t0 : float;  (* creation time, for uptime reporting *)
  access : (Json.t -> unit) option;  (* access-log record consumer *)
  warn : string -> unit;
  cache_warn_mb : float option;
  mutable cache_warned : bool;  (* the size warning fires once *)
}

let create ?timeout_s ?cache_warn_mb ?(warn = fun _ -> ()) ?access ~jobs () =
  let t =
    {
      pool = Fpart_exec.Pool.create ~jobs;
      cache = Cache.create ();
      jobs;
      timeout_s;
      served = 0;
      next_rid = 0;
      t0 = now ();
      access;
      warn;
      cache_warn_mb;
      cache_warned = false;
    }
  in
  (* Cache visibility gauges: sampled at scrape time, so a daemon's
     /metrics always shows the current size of the unbounded result
     cache.  [set_gauge] replaces, so the newest engine owns the
     names (tests create many short-lived engines). *)
  Expose.set_gauge "serve.cache.entries"
    ~help:"Entries in the digest-keyed result cache." (fun () ->
      float_of_int (Cache.size t.cache));
  Expose.set_gauge "serve.cache.bytes_est"
    ~help:"Estimated retained bytes of the result cache." (fun () ->
      float_of_int (Cache.bytes_est t.cache));
  Expose.set_gauge "serve.cache.hit_ratio"
    ~help:"Cache hits / lookups since engine start." (fun () ->
      let hits = Cache.hits t.cache and misses = Cache.misses t.cache in
      if hits + misses = 0 then 0.0
      else float_of_int hits /. float_of_int (hits + misses));
  t

let mint_rid t =
  t.next_rid <- t.next_rid + 1;
  Printf.sprintf "r%06d" t.next_rid

let jobs t = t.jobs

let served t = t.served

let cache_hits t = Cache.hits t.cache

let cache_misses t = Cache.misses t.cache

let shutdown t = Fpart_exec.Pool.shutdown t.pool

(* --- request preparation ------------------------------------------- *)

type prepared = {
  p_req : Protocol.request;
  p_rid : string;  (* engine-minted request id, stamped on spans *)
  p_name : string;  (* circuit name, for the result partfile *)
  p_hg : Hg.t;  (* delta already applied for ECO requests *)
  p_device : Device.t;
  p_config : Fpart.Config.t;
  p_net_digest : string;
  p_cfg_digest : string;
  p_key : string;
  p_partfile : Netlist.Partfile.t option;  (* ECO: stale partition *)
}

let ( let* ) = Result.bind

let load_netlist = function
  | Protocol.Path path ->
    if not (Sys.file_exists path) then
      Error (Printf.sprintf "%s: no such file" path)
    else if Filename.check_suffix path ".v" then
      let* m = Netlist.Verilog.parse_file path in
      Ok (m.Netlist.Verilog.mod_name, m.Netlist.Verilog.graph)
    else if Filename.check_suffix path ".xnf" then
      let* d = Netlist.Xnf.parse_file path in
      Ok (d.Netlist.Xnf.design_name, d.Netlist.Xnf.graph)
    else
      let* m = Netlist.Blif.parse_file path in
      Ok (m.Netlist.Blif.model_name, m.Netlist.Blif.graph)
  | Protocol.Inline_blif text ->
    let* m = Netlist.Blif.parse_string text in
    Ok (m.Netlist.Blif.model_name, m.Netlist.Blif.graph)
  | Protocol.Inline_xnf text ->
    let* d = Netlist.Xnf.parse_string text in
    Ok (d.Netlist.Xnf.design_name, d.Netlist.Xnf.graph)
  | Protocol.Generate { spec; gen_seed } ->
    if String.length spec > 5 && String.sub spec 0 5 = "rent:" then
      match int_of_string_opt (String.sub spec 5 (String.length spec - 5)) with
      | Some cells when cells >= 64 ->
        Ok
          ( "generated",
            Netlist.Generator.generate
              (Netlist.Generator.rent_spec ~name:"rent" ~cells ~seed:gen_seed) )
      | _ -> Error "bad generate spec (expected rent:CELLS with CELLS >= 64)"
    else
      (match String.split_on_char 'x' spec with
      | [ cells; pads ] -> (
        match (int_of_string_opt cells, int_of_string_opt pads) with
        | Some cells, Some pads when cells >= 2 && pads >= 1 ->
          Ok
            ( "generated",
              Netlist.Generator.generate
                (Netlist.Generator.default_spec ~name:"gen" ~cells ~pads
                   ~seed:gen_seed) )
        | _ -> Error "bad generate spec (expected CELLSxPADS or rent:CELLS)")
      | _ -> Error "bad generate spec (expected CELLSxPADS or rent:CELLS)")

let config_of_request (req : Protocol.request) =
  let c = { Fpart.Config.default with delta = req.delta } in
  let c =
    match req.seed with Some s -> { c with Fpart.Config.seed = s } | None -> c
  in
  let* c =
    match req.max_passes with
    | Some m when m >= 1 -> Ok { c with Fpart.Config.max_passes = m }
    | Some _ -> Error "\"max_passes\" must be >= 1"
    | None -> Ok c
  in
  match req.refiner with
  | None -> Ok c
  | Some r -> (
    match Fpart.Config.refiner_of_string r with
    | Some r -> Ok { c with Fpart.Config.refiner = r }
    | None -> Error (Printf.sprintf "unknown refiner %S" r))

let read_source what = function
  | Protocol.Src_text text -> Ok text
  | Protocol.Src_path path ->
    if not (Sys.file_exists path) then
      Error (Printf.sprintf "%s %s: no such file" what path)
    else begin
      let ic = open_in_bin path in
      let len = in_channel_length ic in
      let text = really_input_string ic len in
      close_in ic;
      Ok text
    end

let prepare ~rid (req : Protocol.request) =
  let* device =
    match Device.find req.device with
    | Some d -> Ok d
    | None -> Error (Printf.sprintf "unknown device %S" req.device)
  in
  let* name, hg = load_netlist req.netlist in
  let* config = config_of_request req in
  let* hg, partfile =
    match req.eco with
    | None -> Ok (hg, None)
    | Some eco ->
      let* dtext = read_source "eco delta" eco.Protocol.eco_delta in
      let* d =
        match Netlist.Delta.parse_string dtext with
        | Ok d -> Ok d
        | Error e -> Error ("eco delta: " ^ e)
      in
      let* hg =
        match Netlist.Delta.apply d hg with
        | Ok hg -> Ok hg
        | Error e -> Error ("eco delta: " ^ e)
      in
      let* ptext = read_source "eco partfile" eco.Protocol.eco_partfile in
      let* pf =
        match Netlist.Partfile.parse_string ptext with
        | Ok pf -> Ok pf
        | Error e -> Error ("eco partfile: " ^ e)
      in
      Ok (hg, Some pf)
  in
  let net_digest = Hg.digest hg in
  let cfg_digest =
    Fpart.Config.digest ~extra:(Printf.sprintf "runs=%d" req.runs) config
  in
  Ok
    {
      p_req = req;
      p_rid = rid;
      p_name = name;
      p_hg = hg;
      p_device = device;
      p_config = config;
      p_net_digest = net_digest;
      p_cfg_digest = cfg_digest;
      p_key =
        Cache.key ~netlist_digest:net_digest
          ~device:device.Device.dev_name ~config_digest:cfg_digest
          ~runs:req.runs;
      p_partfile = partfile;
    }

(* --- execution ----------------------------------------------------- *)

(* The per-seed runner, with the fault-injection hook: a request
   carrying [inject:"crash"] raises inside its isolation boundary
   (Batch slot or run_best_isolated seed), exactly like a real bug in
   the partitioning engine would. *)
let runner ~rid (req : Protocol.request) config hg device =
  (* the per-seed body runs on a pool worker domain: setting the
     request id here stamps the engine's own spans and convergence
     events with the request they serve, across the capture/merge
     boundary *)
  Recorder.with_request (Some rid) @@ fun () ->
  (match req.Protocol.inject with
  | Some "crash" -> failwith "injected crash"
  | Some other -> failwith (Printf.sprintf "unknown inject %S" other)
  | None -> ());
  Fpart.Driver.run ~config hg device

let success_of_result p ~mode ~cache ~wall_ms ~k ~assignment ~feasible ~cut
    ~total_pins ~m_lower =
  let delta = Fpart.Config.delta_for p.p_config p.p_device in
  let* pf =
    Netlist.Partfile.of_assignment_checked p.p_hg ~circuit:p.p_name ~delta
      ~block_devices:(Array.make k p.p_device.Device.dev_name)
      ~assignment
  in
  Ok
    {
      Protocol.k;
      feasible;
      cut;
      total_pins;
      m_lower;
      wall_ms;
      cache;
      mode;
      netlist_digest = p.p_net_digest;
      config_digest = p.p_cfg_digest;
      partition = Netlist.Partfile.to_string pf;
    }

let success_of_driver p ~mode ~cache ~wall_ms (r : Fpart.Driver.result) =
  success_of_result p ~mode ~cache ~wall_ms ~k:r.Fpart.Driver.k
    ~assignment:r.Fpart.Driver.assignment ~feasible:r.Fpart.Driver.feasible
    ~cut:r.Fpart.Driver.cut ~total_pins:r.Fpart.Driver.total_pins
    ~m_lower:r.Fpart.Driver.m_lower

(* Cold path for one request, scheduled on [pool] when the request is a
   multi-start portfolio ([pool = Some _]) or run inline inside a Batch
   worker slot ([pool = None], isolation provided by the Batch). *)
let run_cold ?pool p ~cache_tag =
  Recorder.with_request (Some p.p_rid) @@ fun () ->
  let req = p.p_req in
  let t0 = now () in
  let sp = Recorder.span_begin "serve.request" in
  let finish outcome attrs =
    Recorder.span_end sp
      ~attrs:(("id", Json.Str req.Protocol.id) :: attrs);
    outcome
  in
  match pool with
  | Some pool -> (
    match
      Fpart.Driver.run_best_isolated ~config:p.p_config ~pool
        ?timeout_s:req.Protocol.timeout_s
        ~run_one:(runner ~rid:p.p_rid req) ~runs:req.Protocol.runs p.p_hg
        p.p_device
    with
    | Ok r ->
      let wall_ms = (now () -. t0) *. 1000.0 in
      Metrics.observe h_cold wall_ms;
      finish
        (success_of_driver p ~mode:"cold" ~cache:cache_tag ~wall_ms r)
        [ ("mode", Json.Str "cold"); ("runs", Json.Int req.Protocol.runs) ]
    | Error e -> finish (Error e) [ ("error", Json.Str e) ])
  | None ->
    (* inside a Batch worker: crashes propagate to the slot *)
    let r = runner ~rid:p.p_rid req p.p_config p.p_hg p.p_device in
    let wall_ms = (now () -. t0) *. 1000.0 in
    Metrics.observe h_cold wall_ms;
    finish
      (success_of_driver p ~mode:"cold" ~cache:cache_tag ~wall_ms r)
      [ ("mode", Json.Str "cold") ]

let run_eco t p partfile =
  Recorder.with_request (Some p.p_rid) @@ fun () ->
  let sp = Recorder.span_begin "serve.eco" in
  let t0 = now () in
  let outcome =
    Eco.relegalize ~config:p.p_config ~device:p.p_device ~partfile p.p_hg
  in
  let result, attrs =
    match outcome with
    | Error e -> (Error e, [ ("error", Json.Str e) ])
    | Ok (Eco.Warm { assignment; k; cut; total_pins; m_lower; projection }) ->
      Metrics.incr c_eco_warm;
      let wall_ms = (now () -. t0) *. 1000.0 in
      Metrics.observe h_warm wall_ms;
      ( success_of_result p ~mode:"warm" ~cache:"bypass" ~wall_ms ~k ~assignment
          ~feasible:true ~cut ~total_pins ~m_lower,
        [
          ("mode", Json.Str "warm");
          ("matched", Json.Int projection.Eco.matched);
          ("stale", Json.Int projection.Eco.stale);
          ("filled", Json.Int projection.Eco.filled);
          ("start_violations", Json.Int projection.Eco.start_violations);
        ] )
    | Ok (Eco.Cold_needed reason) -> (
      Metrics.incr c_eco_fallback;
      match run_cold ~pool:t.pool p ~cache_tag:"bypass" with
      | Ok s ->
        (Ok { s with Protocol.mode = "cold-fallback" },
         [ ("mode", Json.Str "cold-fallback"); ("reason", Json.Str reason) ])
      | Error e -> (Error e, [ ("error", Json.Str e) ]))
  in
  Recorder.span_end sp
    ~attrs:(("id", Json.Str p.p_req.Protocol.id) :: attrs);
  result

(* --- batch handling ------------------------------------------------ *)

type slot =
  | Done of Protocol.response
  | Eco_job of prepared
  | Multi_job of prepared  (* runs > 1: portfolio sharded across domains *)
  | Single_job of prepared  (* runs = 1: batched under exception isolation *)

(* One structured access-log record per answered request: the rid ties
   the line to every recorder span/event stamped while serving it, so a
   slow request found in the log can be carved out of the trace. *)
let access_record ~rid (req : Protocol.request) outcome =
  let base =
    [
      ("type", Json.Str "access");
      ("ts", Json.Float (now ()));
      ("rid", Json.Str rid);
      ("id", Json.Str req.Protocol.id);
      ("op", Json.Str "partition");
    ]
  in
  let fields =
    match outcome with
    | Ok (s : Protocol.success) ->
      base
      @ [
          ("status", Json.Str "ok");
          ( "mode",
            Json.Str
              (if s.Protocol.cache = "hit" then "hit" else s.Protocol.mode) );
          ("cache", Json.Str s.Protocol.cache);
          ("wall_ms", Json.Float s.Protocol.wall_ms);
          ("cut", Json.Int s.Protocol.cut);
          ("k", Json.Int s.Protocol.k);
          ("netlist_digest", Json.Str s.Protocol.netlist_digest);
          ("config_digest", Json.Str s.Protocol.config_digest);
        ]
    | Error e -> base @ [ ("status", Json.Str "error"); ("error", Json.Str e) ]
  in
  Json.Obj fields

let respond t ~rid (req : Protocol.request) outcome =
  (match outcome with Error _ -> Metrics.incr c_errors | Ok _ -> ());
  (match t.access with
  | Some emit -> emit (access_record ~rid req outcome)
  | None -> ());
  Done { Protocol.resp_id = req.Protocol.id; outcome }

let check_cache_size t =
  match t.cache_warn_mb with
  | Some mb
    when (not t.cache_warned)
         && float_of_int (Cache.bytes_est t.cache) > mb *. 1024.0 *. 1024.0 ->
    t.cache_warned <- true;
    Metrics.incr c_cache_warnings;
    t.warn
      (Printf.sprintf
         "result cache estimated at %.1f MiB (%d entries) exceeds \
          --cache-warn-mb %g; the cache is unbounded — restart the daemon to \
          clear it"
         (float_of_int (Cache.bytes_est t.cache) /. (1024.0 *. 1024.0))
         (Cache.size t.cache) mb)
  | _ -> ()

let handle_requests t reqs =
  let sp = Recorder.span_begin "serve.batch" in
  let slots =
    List.map
      (fun (req : Protocol.request) ->
        Metrics.incr c_requests;
        t.served <- t.served + 1;
        let rid = mint_rid t in
        Recorder.with_request (Some rid) @@ fun () ->
        match prepare ~rid req with
        | Error e -> respond t ~rid req (Error e)
        | Ok p ->
          if p.p_partfile <> None then Eco_job p
          else if req.Protocol.inject <> None then
            (* fault injection must reach the isolation boundary *)
            if req.Protocol.runs > 1 then Multi_job p else Single_job p
          else begin
            let hit =
              let csp = Recorder.span_begin "serve.cache_hit" in
              let hit = Cache.find t.cache p.p_key in
              (match hit with
              | Some _ ->
                Metrics.incr c_cache_hits;
                Recorder.span_end csp
                  ~attrs:
                    [ ("id", Json.Str req.Protocol.id); ("hit", Json.Bool true) ]
              | None ->
                Recorder.span_end csp
                  ~attrs:
                    [ ("id", Json.Str req.Protocol.id); ("hit", Json.Bool false) ]);
              hit
            in
            match hit with
            | Some s ->
              respond t ~rid req (Ok { s with Protocol.cache = "hit" })
            | None ->
              if req.Protocol.runs > 1 then Multi_job p else Single_job p
          end)
      reqs
    |> Array.of_list
  in
  (* batched single-start jobs: one Batch fan-out, per-slot isolation *)
  let singles = ref [] in
  Array.iteri
    (fun i slot -> match slot with Single_job p -> singles := (i, p) :: !singles | _ -> ())
    slots;
  let singles = List.rev !singles in
  if singles <> [] then begin
    (* intra-batch dedup: a workload repeated inside one batch runs
       once; later occurrences are cache replays of the first result *)
    let seen = Hashtbl.create 16 in
    let to_run =
      List.filter
        (fun (_, p) ->
          p.p_req.Protocol.inject <> None
          ||
          if Hashtbl.mem seen p.p_key then false
          else begin
            Hashtbl.add seen p.p_key ();
            true
          end)
        singles
    in
    let outcomes = Hashtbl.create 16 in
    let results =
      Fpart_exec.Batch.run ?timeout_s:t.timeout_s ~pool:t.pool
        ~f:(fun (_, p) -> run_cold p ~cache_tag:"miss")
        to_run
    in
    List.iter2
      (fun (i, p) result ->
        let outcome =
          match result with
          | Ok (Ok s) ->
            if p.p_req.Protocol.inject = None then Cache.add t.cache p.p_key s;
            Ok s
          | Ok (Error e) -> Error e
          | Error e ->
            Error
              (Printf.sprintf "partitioning failed: %s"
                 (Fpart_exec.Batch.error_to_string e))
        in
        if p.p_req.Protocol.inject = None then
          Hashtbl.replace outcomes p.p_key outcome;
        slots.(i) <- respond t ~rid:p.p_rid p.p_req outcome)
      to_run results;
    List.iter
      (fun (i, p) ->
        match slots.(i) with
        | Single_job _ ->
          (* a deduped duplicate: replay the first occurrence's result *)
          let outcome =
            match Cache.find t.cache p.p_key with
            | Some s ->
              Metrics.incr c_cache_hits;
              Ok { s with Protocol.cache = "hit" }
            | None -> (
              match Hashtbl.find_opt outcomes p.p_key with
              | Some o -> o
              | None -> Error "duplicate of a request that produced no result")
          in
          slots.(i) <- respond t ~rid:p.p_rid p.p_req outcome
        | _ -> ())
      singles
  end;
  (* multi-start and ECO jobs: sequential, each using the whole pool *)
  Array.iteri
    (fun i slot ->
      match slot with
      | Multi_job p ->
        (* re-probe: an identical request earlier in this batch may
           have populated the cache since the prepare pass *)
        let outcome =
          match
            if p.p_req.Protocol.inject = None then Cache.find t.cache p.p_key
            else None
          with
          | Some s ->
            Metrics.incr c_cache_hits;
            Ok { s with Protocol.cache = "hit" }
          | None ->
            let outcome = run_cold ~pool:t.pool p ~cache_tag:"miss" in
            (match outcome with
            | Ok s when p.p_req.Protocol.inject = None ->
              Cache.add t.cache p.p_key s
            | _ -> ());
            outcome
        in
        slots.(i) <- respond t ~rid:p.p_rid p.p_req outcome
      | Eco_job p ->
        let partfile = Option.get p.p_partfile in
        slots.(i) <- respond t ~rid:p.p_rid p.p_req (run_eco t p partfile)
      | _ -> ())
    slots;
  let responses =
    Array.to_list slots
    |> List.map (function
         | Done r -> r
         | _ -> assert false)
  in
  check_cache_size t;
  Recorder.span_end sp
    ~attrs:
      [
        ("requests", Json.Int (List.length reqs));
        ("cache_hits", Json.Int (Cache.hits t.cache));
      ];
  responses

(* --- introspection ------------------------------------------------- *)

let cache_entries t = Cache.size t.cache

let cache_bytes_est t = Cache.bytes_est t.cache

let hist_json h =
  let n = Metrics.count h in
  if n = 0 then Json.Obj [ ("count", Json.Int 0) ]
  else
    Json.Obj
      [
        ("count", Json.Int n);
        ("mean", Json.Float (Metrics.hist_mean h));
        ("p50", Json.Float (Metrics.quantile h 0.5));
        ("p95", Json.Float (Metrics.quantile h 0.95));
        ("max", Json.Float (Metrics.hist_max h));
      ]

let cache_json t =
  let hits = Cache.hits t.cache and misses = Cache.misses t.cache in
  Json.Obj
    [
      ("entries", Json.Int (Cache.size t.cache));
      ("bytes_est", Json.Int (Cache.bytes_est t.cache));
      ("hits", Json.Int hits);
      ("misses", Json.Int misses);
      ( "hit_ratio",
        Json.Float
          (if hits + misses = 0 then 0.0
           else float_of_int hits /. float_of_int (hits + misses)) );
    ]

let stats_json t =
  Json.Obj
    [
      ("op", Json.Str "stats");
      ("uptime_s", Json.Float (now () -. t.t0));
      ("jobs", Json.Int t.jobs);
      ("served", Json.Int t.served);
      ("errors", Json.Int (Metrics.counter_value c_errors));
      ("eco_warm", Json.Int (Metrics.counter_value c_eco_warm));
      ("eco_fallback", Json.Int (Metrics.counter_value c_eco_fallback));
      ("cache", cache_json t);
      ( "latency_ms",
        Json.Obj [ ("cold", hist_json h_cold); ("warm", hist_json h_warm) ] );
    ]

let health_json t =
  Json.Obj
    [
      ("op", Json.Str "health");
      ("status", Json.Str "ok");
      ("uptime_s", Json.Float (now () -. t.t0));
      ("jobs", Json.Int t.jobs);
      ("served", Json.Int t.served);
    ]

let ledger_rows t =
  let row name value unit_ higher_better =
    { Fpart_obs.Ledger.name = "serve/latency-table/" ^ name; value; unit_; higher_better }
  in
  let quantile_rows name h =
    if Metrics.count h = 0 then []
    else
      [
        row (name ^ "-p50-ms") (Metrics.quantile h 0.5) "ms" false;
        row (name ^ "-p95-ms") (Metrics.quantile h 0.95) "ms" false;
      ]
  in
  [
    row "requests" (float_of_int t.served) "requests" true;
    row "cache-hits" (float_of_int (Cache.hits t.cache)) "hits" true;
  ]
  @ quantile_rows "cold" h_cold
  @ quantile_rows "warm" h_warm
