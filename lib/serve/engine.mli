(** Request execution engine of the partition service.

    Owns the domain pool, the digest-keyed {!Cache} and the
    latency/throughput instruments.  A batch of requests is prepared
    sequentially (netlist load, delta application, digests, cache
    probe), then the misses are scheduled on the pool: single-start
    requests are fanned out together under {!Fpart_exec.Batch}
    isolation (one crashing request loses only its own slot),
    multi-start requests shard their seed portfolio across the domains
    via {!Fpart.Driver.run_best_isolated}, and ECO requests run the
    {!Eco} warm path with a cold fallback.

    Observability: every request runs inside a [serve.request] recorder
    span, batches inside [serve.batch], warm starts inside [serve.eco],
    and cache hits emit a [serve.cache_hit] span; cold and warm
    latencies feed the [serve.latency.cold_ms] / [serve.latency.warm_ms]
    histograms (readable via {!Fpart_obs.Metrics.quantile} when metrics
    are enabled).

    {b Request tracing.}  The engine mints a process-unique request id
    ([r000001], ...) per answered request and sets it as the recorder's
    request attribution for everything done on the request's behalf —
    including the per-seed work on pool worker domains — so every span
    and convergence event serving the request carries a ["req"] field,
    and the optional access log ties the same id to the response
    (id, mode, wall ms, cut, k, digests).  See docs/SERVICE.md. *)

type t

(** [create ~jobs ()] spawns the pool.  [timeout_s] is the default
    per-request time limit applied to batched single-start jobs (a
    request's own [timeout_s] wins for multi-start scheduling).

    [access] receives one structured record per answered request (the
    JSONL access log).  [cache_warn_mb] arms a one-shot warning through
    [warn] when the result cache's estimated size first crosses the
    threshold.  Creation also registers the [serve.cache.entries] /
    [serve.cache.bytes_est] / [serve.cache.hit_ratio] exposition gauges
    ({!Fpart_obs.Expose.set_gauge}) over this engine's cache. *)
val create :
  ?timeout_s:float ->
  ?cache_warn_mb:float ->
  ?warn:(string -> unit) ->
  ?access:(Fpart_obs.Json.t -> unit) ->
  jobs:int ->
  unit ->
  t

val jobs : t -> int

(** [handle_requests t reqs] answers a batch, responses in request
    order.  Never raises on a bad request — every failure is an error
    response carrying the request id. *)
val handle_requests : t -> Protocol.request list -> Protocol.response list

(** Requests answered so far (including errors). *)
val served : t -> int

val cache_hits : t -> int

val cache_misses : t -> int

val cache_entries : t -> int

val cache_bytes_est : t -> int

(** One-line engine statistics snapshot (the [{"op":"stats"}] protocol
    response): uptime, served/error counts, cache entries/bytes/ratio,
    cold and warm latency quantiles. *)
val stats_json : t -> Fpart_obs.Json.t

(** Cheap liveness probe (the [{"op":"health"}] protocol response and
    the [/healthz] HTTP body). *)
val health_json : t -> Fpart_obs.Json.t

(** Ledger rows summarizing this engine's activity so far, named
    [serve/latency-table/...]: request count, cache hit count, and the
    cold/warm p50 latencies when metrics were enabled. *)
val ledger_rows : t -> Fpart_obs.Ledger.row list

val shutdown : t -> unit
