(** Request execution engine of the partition service.

    Owns the domain pool, the digest-keyed {!Cache} and the
    latency/throughput instruments.  A batch of requests is prepared
    sequentially (netlist load, delta application, digests, cache
    probe), then the misses are scheduled on the pool: single-start
    requests are fanned out together under {!Fpart_exec.Batch}
    isolation (one crashing request loses only its own slot),
    multi-start requests shard their seed portfolio across the domains
    via {!Fpart.Driver.run_best_isolated}, and ECO requests run the
    {!Eco} warm path with a cold fallback.

    Observability: every request runs inside a [serve.request] recorder
    span, batches inside [serve.batch], warm starts inside [serve.eco],
    and cache hits emit a [serve.cache_hit] span; cold and warm
    latencies feed the [serve.latency.cold_ms] / [serve.latency.warm_ms]
    histograms (readable via {!Fpart_obs.Metrics.quantile} when metrics
    are enabled). *)

type t

(** [create ~jobs ()] spawns the pool.  [timeout_s] is the default
    per-request time limit applied to batched single-start jobs (a
    request's own [timeout_s] wins for multi-start scheduling). *)
val create : ?timeout_s:float -> jobs:int -> unit -> t

val jobs : t -> int

(** [handle_requests t reqs] answers a batch, responses in request
    order.  Never raises on a bad request — every failure is an error
    response carrying the request id. *)
val handle_requests : t -> Protocol.request list -> Protocol.response list

(** Requests answered so far (including errors). *)
val served : t -> int

val cache_hits : t -> int

val cache_misses : t -> int

(** Ledger rows summarizing this engine's activity so far, named
    [serve/latency-table/...]: request count, cache hit count, and the
    cold/warm p50 latencies when metrics were enabled. *)
val ledger_rows : t -> Fpart_obs.Ledger.row list

val shutdown : t -> unit
