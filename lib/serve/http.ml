(* Minimal HTTP/1.0 server + client for the telemetry endpoints.

   The listener is a [Thread.t], not a [Domain.t], deliberately:
   threads stay on the domain that created them, and domain-local
   metric cells (Metrics DLS) belong to the domain, so a handler
   reading the instruments observes exactly what the engine domain has
   accumulated/merged.  A scrape is rare and cheap; serialising it onto
   the engine domain's runtime lock is the simple correct choice. *)

type t = {
  sock : Unix.file_descr;
  hport : int;
  mutable stopping : bool;
  mutable thread : Thread.t option;
}

let parse_addr s =
  let host_of = function
    | "" | "localhost" | "127.0.0.1" -> Ok Unix.inet_addr_loopback
    | "0.0.0.0" -> Ok Unix.inet_addr_any
    | h -> (
      match Unix.inet_addr_of_string h with
      | a -> Ok a
      | exception _ -> Error (Printf.sprintf "bad host %S" h))
  in
  let port_of p =
    match int_of_string_opt p with
    | Some n when n >= 0 && n < 65536 -> Ok n
    | _ -> Error (Printf.sprintf "bad port %S" p)
  in
  match String.rindex_opt s ':' with
  | None -> (
    match port_of s with
    | Ok p -> Ok (Unix.inet_addr_loopback, p)
    | Error e -> Error e)
  | Some i -> (
    let host = String.sub s 0 i in
    let port = String.sub s (i + 1) (String.length s - i - 1) in
    match (host_of host, port_of port) with
    | Ok h, Ok p -> Ok (h, p)
    | Error e, _ | _, Error e -> Error e)

(* --- server -------------------------------------------------------- *)

let read_request_path fd =
  (* read until the blank line ending the header block (or 8 KiB) *)
  let buf = Buffer.create 512 in
  let chunk = Bytes.create 512 in
  let rec fill () =
    if Buffer.length buf < 8192 then begin
      let s = String.lowercase_ascii (Buffer.contents buf) in
      let done_ =
        (* headers end at the first blank line *)
        let has sub =
          let n = String.length s and m = String.length sub in
          let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
          go 0
        in
        has "\r\n\r\n" || has "\n\n"
      in
      if not done_ then begin
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> ()
        | n ->
          Buffer.add_subbytes buf chunk 0 n;
          fill ()
        | exception Unix.Unix_error _ -> ()
      end
    end
  in
  fill ();
  let text = Buffer.contents buf in
  match String.index_opt text '\n' with
  | None -> None
  | Some i -> (
    let line = String.trim (String.sub text 0 i) in
    match String.split_on_char ' ' line with
    | "GET" :: path :: _ -> Some path
    | _ -> None)

let write_all fd s =
  let b = Bytes.of_string s in
  let len = Bytes.length b in
  let rec go off =
    if off < len then
      match Unix.write fd b off (len - off) with
      | 0 -> ()
      | n -> go (off + n)
      | exception Unix.Unix_error _ -> ()
  in
  go 0

let respond fd ~status ~content_type body =
  write_all fd
    (Printf.sprintf
       "HTTP/1.0 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: \
        close\r\n\r\n%s"
       status content_type (String.length body) body)

let serve_connection handler fd =
  (match read_request_path fd with
  | None -> respond fd ~status:"400 Bad Request" ~content_type:"text/plain" "bad request\n"
  | Some path -> (
    match handler path with
    | Some (content_type, body) -> respond fd ~status:"200 OK" ~content_type body
    | None -> respond fd ~status:"404 Not Found" ~content_type:"text/plain" "not found\n"
    | exception _ ->
      respond fd ~status:"500 Internal Server Error" ~content_type:"text/plain"
        "handler error\n"));
  (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let accept_loop t handler () =
  let continue = ref true in
  while !continue do
    match Unix.accept t.sock with
    | fd, _ -> if t.stopping then (try Unix.close fd with Unix.Unix_error _ -> ()) else serve_connection handler fd
    | exception Unix.Unix_error _ -> continue := false
  done

let start ~addr ~handler =
  match parse_addr addr with
  | Error e -> Error (Printf.sprintf "bad metrics address %S: %s" addr e)
  | Ok (host, port) -> (
    let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt sock Unix.SO_REUSEADDR true;
    match
      Unix.bind sock (Unix.ADDR_INET (host, port));
      Unix.listen sock 8
    with
    | () ->
      let hport =
        match Unix.getsockname sock with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> port
      in
      let t = { sock; hport; stopping = false; thread = None } in
      t.thread <- Some (Thread.create (accept_loop t handler) ());
      Ok t
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      Error
        (Printf.sprintf "cannot listen on %s: %s" addr (Unix.error_message e)))

let port t = t.hport

let stop t =
  if not t.stopping then begin
    t.stopping <- true;
    (* unblock the accept: a self-connection makes it return, then the
       loop sees [stopping] and exits; closing the socket afterwards
       also covers runtimes where accept fails instead *)
    (let poke = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
     (try Unix.connect poke (Unix.ADDR_INET (Unix.inet_addr_loopback, t.hport))
      with Unix.Unix_error _ -> ());
     try Unix.close poke with Unix.Unix_error _ -> ());
    (try Unix.close t.sock with Unix.Unix_error _ -> ());
    match t.thread with
    | Some th ->
      t.thread <- None;
      Thread.join th
    | None -> ()
  end

(* --- client -------------------------------------------------------- *)

let get ~addr path =
  match parse_addr addr with
  | Error e -> Error e
  | Ok (host, port) -> (
    let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    match Unix.connect sock (Unix.ADDR_INET (host, port)) with
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      Error
        (Printf.sprintf "cannot connect to %s: %s" addr (Unix.error_message e))
    | () ->
      write_all sock
        (Printf.sprintf "GET %s HTTP/1.0\r\nHost: %s\r\nConnection: close\r\n\r\n"
           path addr);
      (try Unix.shutdown sock Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ());
      let buf = Buffer.create 4096 in
      let chunk = Bytes.create 4096 in
      let rec drain () =
        match Unix.read sock chunk 0 (Bytes.length chunk) with
        | 0 -> ()
        | n ->
          Buffer.add_subbytes buf chunk 0 n;
          drain ()
        | exception Unix.Unix_error _ -> ()
      in
      drain ();
      (try Unix.close sock with Unix.Unix_error _ -> ());
      let text = Buffer.contents buf in
      let header_end =
        let rec find i =
          if i + 3 >= String.length text then None
          else if String.sub text i 4 = "\r\n\r\n" then Some (i + 4)
          else if text.[i] = '\n' && text.[i + 1] = '\n' then Some (i + 2)
          else find (i + 1)
        in
        if String.length text < 4 then None else find 0
      in
      (match header_end with
      | None -> Error "malformed HTTP response (no header terminator)"
      | Some body_at ->
        let status_line =
          match String.index_opt text '\n' with
          | Some i -> String.trim (String.sub text 0 i)
          | None -> text
        in
        let body = String.sub text body_at (String.length text - body_at) in
        (match String.split_on_char ' ' status_line with
        | _ :: "200" :: _ -> Ok body
        | _ -> Error (Printf.sprintf "%s: %s" addr status_line))))
