(** Minimal HTTP/1.0 plumbing for the telemetry plane.

    One listener thread, one connection at a time, GET only: exactly
    enough to serve [/metrics] and [/healthz] to a Prometheus scraper
    or [fpart_inspect], with no framework dependency.  The handler runs
    on the listener thread, which lives on the {e creating} domain — so
    a handler reading {!Fpart_obs.Metrics} sees the engine domain's
    merged instrument cells, which is what makes the exposition
    coherent without any cross-domain snapshot plumbing.

    The client half ({!get}) is the same minimalism for the other
    direction: it is what [fpart_inspect scrape] and the CI smoke jobs
    use, so the repo needs no curl. *)

type t

(** [parse_addr s] accepts ["PORT"], [":PORT"] or ["HOST:PORT"] (HOST a
    dotted quad or [localhost]); a bare port binds/connects on
    127.0.0.1. *)
val parse_addr : string -> (Unix.inet_addr * int, string) result

(** [start ~addr ~handler] binds [addr] (port [0] picks a free port —
    read it back with {!port}) and serves GET requests on a background
    thread: [handler path] returns [(content_type, body)] for a [200]
    or [None] for a [404].  Handler exceptions become a [500] and the
    listener survives them. *)
val start :
  addr:string -> handler:(string -> (string * string) option) ->
  (t, string) result

(** Actual bound port (useful after binding port 0). *)
val port : t -> int

(** Stop accepting, join the listener thread, close the socket.
    Idempotent. *)
val stop : t -> unit

(** [get ~addr path] — blocking one-shot GET returning the body of a
    [200] response, or [Error] with the status line / transport
    failure. *)
val get : addr:string -> string -> (string, string) result
