module Json = Fpart_obs.Json

type netlist_src =
  | Path of string
  | Inline_blif of string
  | Inline_xnf of string
  | Generate of {
      spec : string;
      gen_seed : int;
    }

type source = Src_path of string | Src_text of string

type eco = {
  eco_delta : source;
  eco_partfile : source;
}

type request = {
  id : string;
  netlist : netlist_src;
  device : string;
  delta : float option;
  runs : int;
  seed : int option;
  max_passes : int option;
  refiner : string option;
  timeout_s : float option;
  eco : eco option;
  inject : string option;
}

type op =
  | Partition of request
  | Batch of request list
  | Ping
  | Stats
  | Health
  | Shutdown

(* --- decoding ------------------------------------------------------ *)

let jfloat = function
  | Json.Float f -> Some f
  | Json.Int i -> Some (float_of_int i)
  | _ -> None

let opt_member key proj j =
  match Json.member key j with
  | None | Some Json.Null -> Ok None
  | Some v -> (
    match proj v with
    | Some x -> Ok (Some x)
    | None -> Error (Printf.sprintf "field %S has the wrong type" key))

let ( let* ) = Result.bind

let netlist_of_json j =
  match Json.member "netlist" j with
  | None -> Error "missing field \"netlist\""
  | Some n -> (
    let keys =
      List.filter_map
        (fun k -> Option.map (fun v -> (k, v)) (Json.member k n))
        [ "path"; "blif"; "xnf"; "generate" ]
    in
    match keys with
    | [ ("path", v) ] -> (
      match Json.str v with
      | Some p -> Ok (Path p)
      | None -> Error "netlist.path must be a string")
    | [ ("blif", v) ] -> (
      match Json.str v with
      | Some t -> Ok (Inline_blif t)
      | None -> Error "netlist.blif must be a string")
    | [ ("xnf", v) ] -> (
      match Json.str v with
      | Some t -> Ok (Inline_xnf t)
      | None -> Error "netlist.xnf must be a string")
    | [ ("generate", v) ] -> (
      match Json.str v with
      | Some spec ->
        let gen_seed =
          match Json.member "seed" n with Some s -> Option.value ~default:1 (Json.int s) | None -> 1
        in
        Ok (Generate { spec; gen_seed })
      | None -> Error "netlist.generate must be a string")
    | [] -> Error "netlist needs one of: path, blif, xnf, generate"
    | _ -> Error "netlist must carry exactly one of: path, blif, xnf, generate")

let source_of_json what j =
  match (Json.member "path" j, Json.member "text" j) with
  | Some p, None -> (
    match Json.str p with
    | Some p -> Ok (Src_path p)
    | None -> Error (what ^ ".path must be a string"))
  | None, Some t -> (
    match Json.str t with
    | Some t -> Ok (Src_text t)
    | None -> Error (what ^ ".text must be a string"))
  | _ -> Error (what ^ " needs exactly one of: path, text")

let eco_of_json j =
  match Json.member "eco" j with
  | None | Some Json.Null -> Ok None
  | Some e ->
    let* eco_delta =
      match Json.member "delta" e with
      | None -> Error "eco needs a \"delta\" object"
      | Some d -> source_of_json "eco.delta" d
    in
    let* eco_partfile =
      match Json.member "partfile" e with
      | None -> Error "eco needs a \"partfile\" object"
      | Some p -> source_of_json "eco.partfile" p
    in
    Ok (Some { eco_delta; eco_partfile })

let request_of_json j =
  let* id =
    match Json.member "id" j with
    | Some v -> (
      match Json.str v with
      | Some s when s <> "" -> Ok s
      | _ -> Error "\"id\" must be a non-empty string")
    | None -> Error "missing field \"id\""
  in
  let fail msg = Error (Printf.sprintf "request %s: %s" id msg) in
  let lift = function Ok v -> Ok v | Error e -> fail e in
  let* netlist = lift (netlist_of_json j) in
  let* device =
    match Json.member "device" j with
    | Some v -> (
      match Json.str v with
      | Some s -> Ok s
      | None -> fail "\"device\" must be a string")
    | None -> fail "missing field \"device\""
  in
  let* delta = lift (opt_member "delta" jfloat j) in
  let* runs = lift (opt_member "runs" Json.int j) in
  let runs = Option.value ~default:1 runs in
  let* () = if runs >= 1 then Ok () else fail "\"runs\" must be >= 1" in
  let* seed = lift (opt_member "seed" Json.int j) in
  let* max_passes = lift (opt_member "max_passes" Json.int j) in
  let* refiner = lift (opt_member "refiner" Json.str j) in
  let* timeout_s = lift (opt_member "timeout_s" jfloat j) in
  let* eco = lift (eco_of_json j) in
  let* inject = lift (opt_member "inject" Json.str j) in
  Ok
    {
      id;
      netlist;
      device;
      delta;
      runs;
      seed;
      max_passes;
      refiner;
      timeout_s;
      eco;
      inject;
    }

let op_of_line line =
  match Json.of_string line with
  | Error e -> Error ("malformed request line: " ^ e)
  | Ok j -> (
    match Json.member "op" j with
    | Some op -> (
      match Json.str op with
      | Some "ping" -> Ok Ping
      | Some "stats" -> Ok Stats
      | Some "health" -> Ok Health
      | Some "shutdown" -> Ok Shutdown
      | Some "batch" -> (
        match Json.member "requests" j with
        | Some (Json.List rs) ->
          let rec go acc = function
            | [] -> Ok (Batch (List.rev acc))
            | r :: rest -> (
              match request_of_json r with
              | Ok r -> go (r :: acc) rest
              | Error e -> Error e)
          in
          go [] rs
        | _ -> Error "batch needs a \"requests\" array")
      | Some other -> Error (Printf.sprintf "unknown op %S" other)
      | None -> Error "\"op\" must be a string")
    | None -> (
      match request_of_json j with
      | Ok r -> Ok (Partition r)
      | Error e -> Error e))

(* --- encoding ------------------------------------------------------ *)

type success = {
  k : int;
  feasible : bool;
  cut : int;
  total_pins : int;
  m_lower : int;
  wall_ms : float;
  cache : string;
  mode : string;
  netlist_digest : string;
  config_digest : string;
  partition : string;
}

type response = {
  resp_id : string;
  outcome : (success, string) result;
}

let response_to_line r =
  let fields =
    match r.outcome with
    | Ok s ->
      [
        ("id", Json.Str r.resp_id);
        ("status", Json.Str "ok");
        ("k", Json.Int s.k);
        ("feasible", Json.Bool s.feasible);
        ("cut", Json.Int s.cut);
        ("total_pins", Json.Int s.total_pins);
        ("m_lower", Json.Int s.m_lower);
        ("wall_ms", Json.Float s.wall_ms);
        ("cache", Json.Str s.cache);
        ("mode", Json.Str s.mode);
        ("netlist_digest", Json.Str s.netlist_digest);
        ("config_digest", Json.Str s.config_digest);
        ("partition", Json.Str s.partition);
      ]
    | Error e ->
      [
        ("id", Json.Str r.resp_id);
        ("status", Json.Str "error");
        ("error", Json.Str e);
      ]
  in
  Json.to_string (Json.Obj fields)

let pong_line = Json.to_string (Json.Obj [ ("op", Json.Str "pong") ])

let bye_line ~served =
  Json.to_string
    (Json.Obj [ ("op", Json.Str "bye"); ("served", Json.Int served) ])

let response_of_line line =
  match Json.of_string line with
  | Error e -> Error ("malformed response line: " ^ e)
  | Ok j -> (
    let id =
      match Json.member "id" j with
      | Some v -> Option.value ~default:"" (Json.str v)
      | None -> ""
    in
    match Json.member "status" j with
    | Some (Json.Str "error") ->
      let e =
        match Json.member "error" j with
        | Some v -> Option.value ~default:"" (Json.str v)
        | None -> ""
      in
      Ok { resp_id = id; outcome = Error e }
    | Some (Json.Str "ok") ->
      let int k = match Json.member k j with Some v -> Json.int v | None -> None in
      let str k = match Json.member k j with Some v -> Json.str v | None -> None in
      let flt k = match Json.member k j with Some v -> jfloat v | None -> None in
      let bool k =
        match Json.member k j with Some (Json.Bool b) -> Some b | _ -> None
      in
      let all =
        match
          ( int "k", bool "feasible", int "cut", int "total_pins",
            int "m_lower", flt "wall_ms", str "cache", str "mode",
            str "netlist_digest", str "config_digest", str "partition" )
        with
        | ( Some k, Some feasible, Some cut, Some total_pins, Some m_lower,
            Some wall_ms, Some cache, Some mode, Some netlist_digest,
            Some config_digest, Some partition ) ->
          Some
            {
              k;
              feasible;
              cut;
              total_pins;
              m_lower;
              wall_ms;
              cache;
              mode;
              netlist_digest;
              config_digest;
              partition;
            }
        | _ -> None
      in
      (match all with
      | Some s -> Ok { resp_id = id; outcome = Ok s }
      | None -> Error "ok response missing fields")
    | _ -> Error "response line without a status")
