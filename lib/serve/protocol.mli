(** Wire protocol of the partition service.

    Framing is JSONL: one JSON object per line in both directions.  A
    line is either a control operation ([{"op":"ping"}],
    [{"op":"shutdown"}], [{"op":"batch","requests":[...]}]) or a
    partition request (an object carrying an ["id"]).  Every request
    produces exactly one response line tagged with the same id; a batch
    produces one line per contained request, in order.  See
    docs/SERVICE.md for the full field reference. *)

type netlist_src =
  | Path of string  (** Server-side file; format by extension (.v, .xnf, BLIF). *)
  | Inline_blif of string
  | Inline_xnf of string
  | Generate of {
      spec : string;  (** ["CELLSxPADS"] or ["rent:CELLS"], as fpart_cli. *)
      gen_seed : int;
    }

type source = Src_path of string | Src_text of string

(** ECO payload: a netlist delta ({!Netlist.Delta} text form) plus the
    previous partition ({!Netlist.Partfile} text form) to re-legalize. *)
type eco = {
  eco_delta : source;
  eco_partfile : source;
}

type request = {
  id : string;
  netlist : netlist_src;
  device : string;
  delta : float option;
  runs : int;  (** Multi-start breadth; default 1. *)
  seed : int option;
  max_passes : int option;
  refiner : string option;  (** "sanchis" | "flow" | "hybrid". *)
  timeout_s : float option;
  eco : eco option;
  inject : string option;
      (** Test hook: ["crash"] makes the partitioning job raise inside
          its isolation boundary.  Injected requests bypass the cache. *)
}

type op =
  | Partition of request
  | Batch of request list
  | Ping
  | Stats  (** One-line engine statistics snapshot ({!Engine.stats_json}). *)
  | Health  (** Cheap liveness probe ({!Engine.health_json}). *)
  | Shutdown

(** [op_of_line line] parses one request line. *)
val op_of_line : string -> (op, string) result

type success = {
  k : int;
  feasible : bool;
  cut : int;
  total_pins : int;
  m_lower : int;
  wall_ms : float;
  cache : string;  (** "hit" | "miss" | "bypass". *)
  mode : string;  (** "cold" | "warm" | "cold-fallback". *)
  netlist_digest : string;
  config_digest : string;
  partition : string;  (** Partfile text of the result. *)
}

type response = {
  resp_id : string;
  outcome : (success, string) result;
}

(** One response line (no trailing newline). *)
val response_to_line : response -> string

(** Control-channel lines. *)
val pong_line : string

val bye_line : served:int -> string

(** Parse a response line back (client side, tests). *)
val response_of_line : string -> (response, string) result
