module Json = Fpart_obs.Json
module Metrics = Fpart_obs.Metrics

(* Per-op request counters: exposed as [fpart_serve_op_*_total], the
   daemon's traffic mix at a glance. *)
let c_op_partition = Metrics.counter "serve.op.partition"
let c_op_batch = Metrics.counter "serve.op.batch"
let c_op_ping = Metrics.counter "serve.op.ping"
let c_op_stats = Metrics.counter "serve.op.stats"
let c_op_health = Metrics.counter "serve.op.health"
let c_op_shutdown = Metrics.counter "serve.op.shutdown"
let c_op_malformed = Metrics.counter "serve.op.malformed"

type reaction =
  | Lines of string list
  | Quit

let error_line msg =
  Protocol.response_to_line
    { Protocol.resp_id = "?"; outcome = Error msg }

let is_noise line =
  let line = String.trim line in
  line = "" || line.[0] = '#'

let count_op = function
  | Protocol.Partition _ -> Metrics.incr c_op_partition
  | Protocol.Batch _ -> Metrics.incr c_op_batch
  | Protocol.Ping -> Metrics.incr c_op_ping
  | Protocol.Stats -> Metrics.incr c_op_stats
  | Protocol.Health -> Metrics.incr c_op_health
  | Protocol.Shutdown -> Metrics.incr c_op_shutdown

let react engine line =
  if is_noise line then Lines []
  else
    match Protocol.op_of_line line with
    | Error e ->
      Metrics.incr c_op_malformed;
      Lines [ error_line e ]
    | Ok op -> (
      count_op op;
      match op with
      | Protocol.Ping -> Lines [ Protocol.pong_line ]
      | Protocol.Stats -> Lines [ Json.to_string (Engine.stats_json engine) ]
      | Protocol.Health -> Lines [ Json.to_string (Engine.health_json engine) ]
      | Protocol.Shutdown -> Quit
      | Protocol.Partition req ->
        Lines
          (List.map Protocol.response_to_line
             (Engine.handle_requests engine [ req ]))
      | Protocol.Batch reqs ->
        Lines
          (List.map Protocol.response_to_line
             (Engine.handle_requests engine reqs)))

let run_batch engine lines out =
  let written = ref 0 in
  let emit line =
    output_string out line;
    output_char out '\n';
    incr written
  in
  let pending = ref [] in
  let flush_pending () =
    match List.rev !pending with
    | [] -> ()
    | reqs ->
      pending := [];
      List.iter
        (fun r -> emit (Protocol.response_to_line r))
        (Engine.handle_requests engine reqs)
  in
  (try
     List.iter
       (fun line ->
         if not (is_noise line) then
           match Protocol.op_of_line line with
           | Error e ->
             Metrics.incr c_op_malformed;
             flush_pending ();
             emit (error_line e)
           | Ok op -> (
             count_op op;
             match op with
             | Protocol.Partition req -> pending := req :: !pending
             | Protocol.Batch reqs ->
               pending := List.rev_append reqs !pending
             | Protocol.Ping ->
               flush_pending ();
               emit Protocol.pong_line
             | Protocol.Stats ->
               (* stats observe the requests before them in the script,
                  so the pending group must land first *)
               flush_pending ();
               emit (Json.to_string (Engine.stats_json engine))
             | Protocol.Health ->
               flush_pending ();
               emit (Json.to_string (Engine.health_json engine))
             | Protocol.Shutdown ->
               flush_pending ();
               emit (Protocol.bye_line ~served:(Engine.served engine));
               raise Exit))
       lines
   with Exit -> ());
  flush_pending ();
  flush out;
  !written
