type reaction =
  | Lines of string list
  | Quit

let error_line msg =
  Protocol.response_to_line
    { Protocol.resp_id = "?"; outcome = Error msg }

let is_noise line =
  let line = String.trim line in
  line = "" || line.[0] = '#'

let react engine line =
  if is_noise line then Lines []
  else
    match Protocol.op_of_line line with
    | Error e -> Lines [ error_line e ]
    | Ok Protocol.Ping -> Lines [ Protocol.pong_line ]
    | Ok Protocol.Shutdown -> Quit
    | Ok (Protocol.Partition req) ->
      Lines
        (List.map Protocol.response_to_line
           (Engine.handle_requests engine [ req ]))
    | Ok (Protocol.Batch reqs) ->
      Lines
        (List.map Protocol.response_to_line
           (Engine.handle_requests engine reqs))

let run_batch engine lines out =
  let written = ref 0 in
  let emit line =
    output_string out line;
    output_char out '\n';
    incr written
  in
  let pending = ref [] in
  let flush_pending () =
    match List.rev !pending with
    | [] -> ()
    | reqs ->
      pending := [];
      List.iter
        (fun r -> emit (Protocol.response_to_line r))
        (Engine.handle_requests engine reqs)
  in
  (try
     List.iter
       (fun line ->
         if not (is_noise line) then
           match Protocol.op_of_line line with
           | Error e ->
             flush_pending ();
             emit (error_line e)
           | Ok (Protocol.Partition req) -> pending := req :: !pending
           | Ok (Protocol.Batch reqs) ->
             pending := List.rev_append reqs !pending
           | Ok Protocol.Ping ->
             flush_pending ();
             emit Protocol.pong_line
           | Ok Protocol.Shutdown ->
             flush_pending ();
             emit (Protocol.bye_line ~served:(Engine.served engine));
             raise Exit)
       lines
   with Exit -> ());
  flush_pending ();
  flush out;
  !written
