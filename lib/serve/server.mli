(** Line-oriented session layer over {!Engine}.

    Shared by the daemon's transports: the stdin [--batch] file, a Unix
    socket connection, and the tests.  One input line produces zero or
    more output lines; [Quit] asks the transport to acknowledge with
    {!Protocol.bye_line} and stop. *)

type reaction =
  | Lines of string list  (** Response lines to write, in order. *)
  | Quit  (** Shutdown requested; transport writes the bye line. *)

(** [react engine line] processes one protocol line.  Blank lines and
    [#] comments produce no output; malformed lines produce one error
    response line.  Every parsed line increments its [serve.op.*]
    counter ([partition], [batch], [ping], [stats], [health],
    [shutdown]; parse failures count under [serve.op.malformed]). *)
val react : Engine.t -> string -> reaction

(** [run_batch engine lines out] feeds a whole request script through
    the engine with cross-request batching: consecutive partition
    requests are collected and answered as one {!Engine.handle_requests}
    batch (so single-start jobs share a Batch fan-out), control lines
    flush the group.  Responses are written to [out] one line at a
    time, in request order.  Returns the number of lines written. *)
val run_batch : Engine.t -> string list -> out_channel -> int
