(* Brute-force oracles on tiny instances: exhaustive enumeration checks
   the pin model, the hyperedge min-cut of the flow network, and the
   optimality gap of the full drivers. *)

module Hg = Hypergraph.Hgraph
module State = Partition.State

let tiny_circuit ?(cells = 7) ?(pads = 2) seed =
  Fpart_testgen.circuit ~name:"bf" ~cells ~pads seed

let iter_assignments = Fpart_testgen.iter_assignments

(* Reference (slow) implementations of the pin model. *)
let ref_pins hg assign k =
  let pins = Array.make k 0 in
  Hg.iter_nets
    (fun e ->
      let ps = Hg.pins hg e in
      let blocks = Array.to_list ps |> List.map (fun v -> assign v) |> List.sort_uniq compare in
      let has_pad = Array.exists (fun v -> Hg.is_pad hg v) ps in
      List.iter
        (fun b -> if has_pad || List.length blocks >= 2 then pins.(b) <- pins.(b) + 1)
        blocks)
    hg;
  pins

let ref_cut hg assign =
  Hg.fold_nets
    (fun acc e ->
      let ps = Hg.pins hg e in
      let blocks =
        Array.to_list ps |> List.map assign |> List.sort_uniq compare
      in
      if List.length blocks >= 2 then acc + 1 else acc)
    0 hg

let test_pin_model_exhaustive () =
  let hg = tiny_circuit ~cells:6 ~pads:2 1 in
  let n = Hg.num_nodes hg in
  let k = 2 in
  iter_assignments n k (fun assign ->
      let st = State.create hg ~k ~assign:(fun v -> assign.(v)) in
      let expected = ref_pins hg (fun v -> assign.(v)) k in
      for b = 0 to k - 1 do
        if State.pins_of st b <> expected.(b) then
          Alcotest.failf "pins mismatch on %s: block %d got %d want %d"
            (String.concat "" (Array.to_list (Array.map string_of_int assign)))
            b (State.pins_of st b) expected.(b)
      done;
      if State.cut_size st <> ref_cut hg (fun v -> assign.(v)) then
        Alcotest.fail "cut mismatch")

let test_pin_model_exhaustive_3way () =
  let hg = tiny_circuit ~cells:5 ~pads:1 2 in
  let n = Hg.num_nodes hg in
  let k = 3 in
  iter_assignments n k (fun assign ->
      let st = State.create hg ~k ~assign:(fun v -> assign.(v)) in
      let expected = ref_pins hg (fun v -> assign.(v)) k in
      for b = 0 to k - 1 do
        Alcotest.(check int) "pins" expected.(b) (State.pins_of st b)
      done)

(* Exhaustive min net cut separating two seeds vs. the FBB flow value. *)
let test_flow_mincut_exhaustive () =
  List.iter
    (fun seed ->
      let hg = tiny_circuit ~cells:8 ~pads:2 seed in
      let n = Hg.num_nodes hg in
      let seed_s = 0 and seed_t = 5 in
      (* brute force: min cut over all bipartitions with s in 0, t in 1 *)
      let best = ref max_int in
      iter_assignments n 2 (fun assign ->
          if assign.(seed_s) = 0 && assign.(seed_t) = 1 then
            best := min !best (ref_cut hg (fun v -> assign.(v))));
      (* flow network: attach seeds and run to completion *)
      let net = Flow.Flownet.build hg ~keep:(fun _ -> true) in
      Flow.Flownet.attach_source net seed_s;
      Flow.Flownet.attach_sink net seed_t;
      let flow_cut = Flow.Flownet.run net in
      Alcotest.(check int) (Printf.sprintf "seed %d min cut" seed) !best flow_cut)
    [ 3; 4; 5; 6 ]

(* Exhaustive minimum feasible k vs. the drivers. *)
let min_feasible_k hg ~s_max ~t_max ~k_max =
  let n = Hg.num_nodes hg in
  let rec try_k k =
    if k > k_max then None
    else begin
      let found = ref false in
      iter_assignments n k (fun assign ->
          if not !found then begin
            let st = State.create hg ~k ~assign:(fun v -> assign.(v)) in
            let ok = ref true in
            for b = 0 to k - 1 do
              if State.size_of st b > s_max || State.pins_of st b > t_max then
                ok := false
            done;
            if !ok then found := true
          end);
      if !found then Some k else try_k (k + 1)
    end
  in
  try_k 1

let test_driver_vs_exhaustive () =
  (* tiny custom device so 2-3 blocks are needed *)
  let device = { Device.dev_name = "TINY"; family = Device.XC3000; s_ds = 4; t_max = 6 } in
  List.iter
    (fun seed ->
      let hg = tiny_circuit ~cells:7 ~pads:2 seed in
      match min_feasible_k hg ~s_max:4 ~t_max:6 ~k_max:4 with
      | None -> () (* not partitionable within 4 blocks: skip *)
      | Some opt ->
        let config = { Fpart.Config.default with delta = Some 1.0 } in
        let r = Fpart.Driver.run ~config hg device in
        if not r.Fpart.Driver.feasible then Alcotest.failf "seed %d: infeasible" seed;
        if r.Fpart.Driver.k < opt then
          Alcotest.failf "seed %d: k=%d below exhaustive optimum %d (bug!)" seed
            r.Fpart.Driver.k opt;
        if r.Fpart.Driver.k > opt + 1 then
          Alcotest.failf "seed %d: k=%d far above optimum %d" seed r.Fpart.Driver.k opt)
    [ 11; 12; 13; 14; 15 ]

let test_fm_vs_exhaustive_cut () =
  (* FM from a few starts on a tiny graph should find the optimal
     balanced bipartition cut (it is near-exhaustive at this size) *)
  List.iter
    (fun seed ->
      let hg = tiny_circuit ~cells:8 ~pads:2 seed in
      let n = Hg.num_nodes hg in
      let half = 4 in
      let best = ref max_int in
      iter_assignments n 2 (fun assign ->
          let st = State.create hg ~k:2 ~assign:(fun v -> assign.(v)) in
          if abs (State.size_of st 0 - State.size_of st 1) <= 2 then
            best := min !best (State.cut_size st));
      let limits = { Fm.lo0 = half - 1; hi0 = half + 1; lo1 = half - 1; hi1 = half + 1 } in
      let achieved = ref max_int in
      List.iter
        (fun start ->
          let st =
            State.create hg ~k:2 ~assign:(fun v ->
                if Hg.is_pad hg v then 0 else (v + start) land 1)
          in
          if
            State.size_of st 0 >= limits.Fm.lo0
            && State.size_of st 0 <= limits.Fm.hi0
          then begin
            let r = Fm.refine st ~block0:0 ~block1:1 ~limits ~max_passes:10 in
            achieved := min !achieved r.Fm.final_cut
          end)
        [ 0; 1 ];
      if !achieved < !best then
        Alcotest.failf "seed %d: FM cut %d below exhaustive %d (oracle bug)" seed
          !achieved !best;
      (* allow a 1-net gap: FM is a heuristic, the oracle allows slack 2 *)
      if !achieved <> max_int && !achieved > !best + 2 then
        Alcotest.failf "seed %d: FM cut %d far above optimal %d" seed !achieved !best)
    [ 21; 22; 23 ]

let () =
  Alcotest.run "bruteforce"
    [
      ( "oracles",
        [
          Alcotest.test_case "pin model, all 2-way assignments" `Quick
            test_pin_model_exhaustive;
          Alcotest.test_case "pin model, all 3-way assignments" `Quick
            test_pin_model_exhaustive_3way;
          Alcotest.test_case "flow = exhaustive min cut" `Quick
            test_flow_mincut_exhaustive;
          Alcotest.test_case "driver near exhaustive optimum" `Quick
            test_driver_vs_exhaustive;
          Alcotest.test_case "FM near exhaustive optimum" `Quick
            test_fm_vs_exhaustive_cut;
        ] );
    ]
