(* Bucket_array and Direction_set: the FM gain bucket machinery. *)

module B = Gainbucket.Bucket_array
module D = Gainbucket.Direction_set

let test_empty () =
  let b = B.create ~cells:8 ~max_gain:4 () in
  Alcotest.(check int) "cardinal" 0 (B.cardinal b);
  Alcotest.(check bool) "is_empty" true (B.is_empty b);
  Alcotest.(check bool) "no top" true (B.top_gain b = None)

let test_insert_top () =
  let b = B.create ~cells:8 ~max_gain:4 () in
  B.insert b 0 (-2);
  B.insert b 1 3;
  B.insert b 2 0;
  Alcotest.(check int) "cardinal" 3 (B.cardinal b);
  Alcotest.(check bool) "top" true (B.top_gain b = Some 3);
  Alcotest.(check int) "gain_of" (-2) (B.gain_of b 0)

let test_fifo_order () =
  let b = B.create ~discipline:B.Fifo ~cells:8 ~max_gain:4 () in
  B.insert b 0 2;
  B.insert b 1 2;
  B.insert b 2 2;
  (* head is the oldest *)
  let top = B.fold_top b ~limit:3 ~init:[] ~f:(fun acc c -> c :: acc) in
  Alcotest.(check (list int)) "FIFO" [ 0; 1; 2 ] (List.rev top);
  B.remove b 1;
  let top = B.fold_top b ~limit:3 ~init:[] ~f:(fun acc c -> c :: acc) in
  Alcotest.(check (list int)) "FIFO after middle removal" [ 0; 2 ] (List.rev top);
  match B.check b with Ok () -> () | Error e -> Alcotest.fail e

let test_lifo_order () =
  let b = B.create ~cells:8 ~max_gain:4 () in
  B.insert b 0 2;
  B.insert b 1 2;
  B.insert b 2 2;
  (* head is the most recently inserted *)
  let top = B.fold_top b ~limit:3 ~init:[] ~f:(fun acc c -> c :: acc) in
  Alcotest.(check (list int)) "LIFO" [ 2; 1; 0 ] (List.rev top)

let test_fold_top_limit () =
  let b = B.create ~cells:8 ~max_gain:4 () in
  for c = 0 to 5 do
    B.insert b c 1
  done;
  let n = B.fold_top b ~limit:2 ~init:0 ~f:(fun acc _ -> acc + 1) in
  Alcotest.(check int) "limit respected" 2 n

let test_remove () =
  let b = B.create ~cells:8 ~max_gain:4 () in
  B.insert b 0 4;
  B.insert b 1 1;
  B.remove b 0;
  Alcotest.(check bool) "top drops" true (B.top_gain b = Some 1);
  Alcotest.(check bool) "gone" false (B.mem b 0);
  B.remove b 0;
  (* removing an absent cell is a no-op *)
  Alcotest.(check int) "cardinal" 1 (B.cardinal b)

let test_remove_middle () =
  let b = B.create ~cells:8 ~max_gain:4 () in
  B.insert b 0 2;
  B.insert b 1 2;
  B.insert b 2 2;
  B.remove b 1;
  let top = B.fold_top b ~limit:8 ~init:[] ~f:(fun acc c -> c :: acc) in
  Alcotest.(check (list int)) "links intact" [ 2; 0 ] (List.rev top);
  match B.check b with Ok () -> () | Error e -> Alcotest.fail e

let test_update () =
  let b = B.create ~cells:8 ~max_gain:4 () in
  B.insert b 0 0;
  B.insert b 1 0;
  B.update b 0 4;
  Alcotest.(check bool) "top rises" true (B.top_gain b = Some 4);
  B.update b 0 (-4);
  Alcotest.(check bool) "top falls" true (B.top_gain b = Some 0);
  Alcotest.(check int) "gain updated" (-4) (B.gain_of b 0)

let test_errors () =
  let b = B.create ~cells:4 ~max_gain:2 () in
  B.insert b 0 0;
  Alcotest.check_raises "double insert"
    (Invalid_argument "Bucket_array.insert: cell already present") (fun () ->
      B.insert b 0 1);
  Alcotest.check_raises "gain range"
    (Invalid_argument "Bucket_array.insert: gain out of range") (fun () ->
      B.insert b 1 3);
  Alcotest.check_raises "gain_of absent"
    (Invalid_argument "Bucket_array.gain_of: absent cell") (fun () ->
      ignore (B.gain_of b 2));
  Alcotest.check_raises "update absent"
    (Invalid_argument "Bucket_array.update: absent cell") (fun () -> B.update b 2 0)

let test_clear () =
  let b = B.create ~cells:8 ~max_gain:4 () in
  for c = 0 to 7 do
    B.insert b c ((c mod 9) - 4)
  done;
  B.clear b;
  Alcotest.(check int) "cardinal" 0 (B.cardinal b);
  Alcotest.(check bool) "no top" true (B.top_gain b = None);
  B.insert b 3 2;
  Alcotest.(check bool) "reusable" true (B.top_gain b = Some 2)

(* Model-based property: random op sequences match a naive map model. *)
let prop_model =
  let open QCheck in
  Test.make ~count:200 ~name:"bucket matches naive model"
    (small_list (triple (int_bound 2) (int_bound 15) (int_range (-8) 8)))
    (fun ops ->
      let b = B.create ~cells:16 ~max_gain:8 () in
      let model = Hashtbl.create 16 in
      List.iter
        (fun (op, cell, gain) ->
          match op with
          | 0 ->
            if not (Hashtbl.mem model cell) then begin
              B.insert b cell gain;
              Hashtbl.add model cell gain
            end
          | 1 ->
            B.remove b cell;
            Hashtbl.remove model cell
          | _ ->
            if Hashtbl.mem model cell then begin
              B.update b cell gain;
              Hashtbl.replace model cell gain
            end)
        ops;
      let model_top = Hashtbl.fold (fun _ g acc -> max g acc) model min_int in
      let top_ok =
        match B.top_gain b with
        | None -> Hashtbl.length model = 0
        | Some g -> g = model_top
      in
      top_ok
      && B.cardinal b = Hashtbl.length model
      && B.check b = Ok ()
      && Hashtbl.fold (fun c g acc -> acc && B.mem b c && B.gain_of b c = g) model true)

(* Workload counters: one logical update must tick [bucket.updates]
   once and leave the insert/remove counters alone (the historical
   remove+insert implementation double-counted), and an equal-gain
   update must tick nothing. *)
let test_update_counters () =
  let module Obs = Fpart_obs.Metrics in
  let inserts () = Obs.counter_value (Obs.counter "bucket.inserts") in
  let removes () = Obs.counter_value (Obs.counter "bucket.removes") in
  let updates () = Obs.counter_value (Obs.counter "bucket.updates") in
  let b = B.create ~cells:8 ~max_gain:4 () in
  B.insert b 0 0;
  B.insert b 1 2;
  let i0 = inserts () and r0 = removes () and u0 = updates () in
  B.update b 0 3;
  Alcotest.(check int) "one update tick" (u0 + 1) (updates ());
  Alcotest.(check int) "no phantom insert" i0 (inserts ());
  Alcotest.(check int) "no phantom remove" r0 (removes ());
  B.update b 0 3;
  Alcotest.(check int) "equal-gain update is free" (u0 + 1) (updates ());
  Alcotest.(check int) "equal-gain: no insert" i0 (inserts ());
  Alcotest.(check int) "equal-gain: no remove" r0 (removes ());
  B.remove b 1;
  Alcotest.(check int) "remove ticks removes" (r0 + 1) (removes ());
  Alcotest.(check int) "remove does not tick updates" (u0 + 1) (updates ())

(* Direction_set: all mutations go through the set so its top index
   stays exact. *)

let dirs_ok d =
  match D.check d with Ok () -> () | Error e -> Alcotest.fail e

let test_dirs_best () =
  let d = D.create ~directions:3 ~cells:8 ~max_gain:4 () in
  D.insert d ~dir:0 0 1;
  D.insert d ~dir:1 1 3;
  D.insert d ~dir:2 2 3;
  Alcotest.(check bool) "best gain" true (D.best_gain d = Some 3);
  Alcotest.(check (list int)) "best dirs" [ 1; 2 ] (D.best_dirs d);
  D.update d ~dir:1 1 (-2);
  Alcotest.(check (list int)) "update retargets" [ 2 ] (D.best_dirs d);
  D.remove d ~dir:2 2;
  Alcotest.(check bool) "best falls back" true (D.best_gain d = Some 1);
  Alcotest.(check (list int)) "dir 0 now best" [ 0 ] (D.best_dirs d);
  dirs_ok d

let test_dirs_disable () =
  let d = D.create ~directions:2 ~cells:4 ~max_gain:4 () in
  D.insert d ~dir:0 0 4;
  D.insert d ~dir:1 1 1;
  D.set_enabled d 0 false;
  Alcotest.(check bool) "disabled skipped" true (D.best_gain d = Some 1);
  Alcotest.(check (list int)) "only dir 1" [ 1 ] (D.best_dirs d);
  D.set_enabled d 0 true;
  Alcotest.(check bool) "re-enabled" true (D.best_gain d = Some 4);
  (* mutations while disabled must still land in the index on re-enable *)
  D.set_enabled d 1 false;
  D.update d ~dir:1 1 4;
  Alcotest.(check (list int)) "disabled update invisible" [ 0 ] (D.best_dirs d);
  D.set_enabled d 1 true;
  Alcotest.(check (list int)) "visible after re-enable" [ 0; 1 ] (D.best_dirs d);
  dirs_ok d

let test_dirs_totals_clear () =
  let d = D.create ~directions:2 ~cells:4 ~max_gain:4 () in
  D.insert d ~dir:0 0 1;
  D.insert d ~dir:1 1 1;
  D.set_enabled d 1 false;
  Alcotest.(check int) "total cells" 2 (D.total_cells d);
  D.clear d;
  Alcotest.(check int) "cleared" 0 (D.total_cells d);
  Alcotest.(check bool) "re-enabled by clear" true (D.enabled d 1);
  Alcotest.(check bool) "empty best" true (D.best_dirs d = []);
  dirs_ok d

(* Model-based property for the top index: after a random op sequence,
   [best_gain]/[best_dirs] must equal a naive scan over the enabled
   buckets. *)
let prop_dirs_model =
  let open QCheck in
  Test.make ~count:200 ~name:"direction set matches naive scan"
    (small_list
       (quad (int_bound 3) (int_bound 3) (int_bound 7) (int_range (-6) 6)))
    (fun ops ->
      let dirs = 4 in
      let d = D.create ~directions:dirs ~cells:8 ~max_gain:6 () in
      List.iter
        (fun (op, dir, cell, gain) ->
          match op with
          | 0 -> if not (D.mem d ~dir cell) then D.insert d ~dir cell gain
          | 1 -> D.remove d ~dir cell
          | 2 -> if D.mem d ~dir cell then D.update d ~dir cell gain
          | _ -> D.set_enabled d dir (gain >= 0))
        ops;
      let naive_best = ref None in
      for dir = 0 to dirs - 1 do
        if D.enabled d dir then
          match B.top_gain (D.bucket d dir) with
          | Some g when (match !naive_best with None -> true | Some b -> g > b)
            ->
            naive_best := Some g
          | Some _ | None -> ()
      done;
      let naive_dirs =
        List.filter
          (fun dir ->
            D.enabled d dir && B.top_gain (D.bucket d dir) = !naive_best
            && !naive_best <> None)
          [ 0; 1; 2; 3 ]
      in
      D.best_gain d = !naive_best
      && D.best_dirs d = naive_dirs
      && D.check d = Ok ())

let () =
  Alcotest.run "gainbucket"
    [
      ( "bucket",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "insert/top" `Quick test_insert_top;
          Alcotest.test_case "LIFO" `Quick test_lifo_order;
          Alcotest.test_case "FIFO" `Quick test_fifo_order;
          Alcotest.test_case "fold_top limit" `Quick test_fold_top_limit;
          Alcotest.test_case "remove" `Quick test_remove;
          Alcotest.test_case "remove middle" `Quick test_remove_middle;
          Alcotest.test_case "update" `Quick test_update;
          Alcotest.test_case "errors" `Quick test_errors;
          Alcotest.test_case "clear" `Quick test_clear;
          Alcotest.test_case "update counters" `Quick test_update_counters;
        ] );
      ( "directions",
        [
          Alcotest.test_case "best" `Quick test_dirs_best;
          Alcotest.test_case "disable" `Quick test_dirs_disable;
          Alcotest.test_case "totals/clear" `Quick test_dirs_totals_clear;
        ] );
      ( "property",
        List.map QCheck_alcotest.to_alcotest [ prop_model; prop_dirs_model ] );
    ]
