(* Fpart_check: the reference oracles, the differential move-log
   harness and the runtime self-check levels. *)

module Hg = Hypergraph.Hgraph
module State = Partition.State
module Cost = Partition.Cost
module Oracle = Fpart_check.Oracle
module Diff = Fpart_check.Diff
module Selfcheck = Fpart_check.Selfcheck
module Tg = Fpart_testgen

let sgn x = compare x 0

(* ------------------------------------------------------------------ *)
(* Oracle vs the incremental state                                     *)

let prop_incremental_matches_oracle =
  QCheck.Test.make ~count:30
    ~name:"incremental state matches the oracle after random moves"
    (Tg.arb_scene ~max_cells:80 ())
    (fun sc ->
      let hg = Tg.scene_graph sc in
      let init = Tg.scene_init sc in
      let st = State.create hg ~k:sc.Tg.sc_k ~assign:(fun v -> init.(v)) in
      List.iter (fun (v, d) -> State.move st v d) (Tg.scene_moves sc);
      Oracle.diff_state st = [])

let prop_gain_agreement =
  QCheck.Test.make ~count:25
    ~name:"State.cut_gain/pin_gain agree with the oracle along a move sequence"
    (Tg.arb_scene ~max_cells:60 ())
    (fun sc ->
      let hg = Tg.scene_graph sc in
      let k = sc.Tg.sc_k in
      let init = Tg.scene_init sc in
      let st = State.create hg ~k ~assign:(fun v -> init.(v)) in
      let assign = Array.copy init in
      List.for_all
        (fun (v, d) ->
          let ok =
            State.cut_gain st v d = Oracle.cut_gain hg ~k ~assign v d
            && State.pin_gain st v d = Oracle.pin_gain hg ~k ~assign v d
          in
          State.move st v d;
          assign.(v) <- d;
          ok)
        (Tg.scene_moves sc))

let prop_evaluate_agreement =
  QCheck.Test.make ~count:25
    ~name:"Oracle.evaluate equals Cost.evaluate on a live state"
    (Tg.arb_scene ~max_cells:80 ())
    (fun sc ->
      let hg = Tg.scene_graph sc in
      let ctx = Cost.context_of Device.xc3020 ~delta:0.9 hg in
      let k = sc.Tg.sc_k in
      let init = Tg.scene_init sc in
      let st = State.create hg ~k ~assign:(fun v -> init.(v)) in
      let remainder = Some (k - 1) in
      let a = Cost.evaluate Cost.default_params ctx st ~remainder ~step_k:1 in
      let b =
        Oracle.evaluate Cost.default_params ctx hg ~k ~assign:init ~remainder
          ~step_k:1
      in
      Cost.compare_value a b = 0
      && a.Cost.feasible_blocks = b.Cost.feasible_blocks
      && a.Cost.t_sum = b.Cost.t_sum)

(* ------------------------------------------------------------------ *)
(* Differential move-log harness                                       *)

let prop_replay_clean =
  QCheck.Test.make ~count:25 ~name:"a recorded move log replays cleanly"
    (Tg.arb_scene ~max_cells:60 ())
    (fun sc ->
      let hg = Tg.scene_graph sc in
      let init = Tg.scene_init sc in
      let moves = Tg.scene_moves sc in
      let log = Diff.log_of_moves hg ~k:sc.Tg.sc_k ~init ~moves in
      Diff.replay hg ~k:sc.Tg.sc_k ~init ~log = Ok (List.length moves))

(* Acceptance criterion of the issue: an intentionally corrupted move
   log must be caught, at the exact corrupted entry. *)
let test_corrupted_log_caught () =
  let sc = { Tg.sc_cells = 30; sc_pads = 6; sc_k = 3; sc_seed = 7 } in
  let hg = Tg.scene_graph sc in
  let init = Tg.scene_init sc in
  let moves = Tg.scene_moves sc in
  let log = Diff.log_of_moves hg ~k:3 ~init ~moves in
  (match Diff.replay hg ~k:3 ~init ~log with
  | Ok n -> Alcotest.(check int) "clean replay" (List.length moves) n
  | Error v -> Alcotest.failf "clean log rejected: %a" Diff.pp_violation v);
  let corrupt_at i f = List.mapi (fun j e -> if j = i then f e else e) log in
  (match
     Diff.replay hg ~k:3 ~init
       ~log:
         (corrupt_at 5 (fun e ->
              { e with Diff.gain = Option.map (fun g -> g + 1) e.Diff.gain }))
   with
  | Ok _ -> Alcotest.fail "corrupted gain claim not caught"
  | Error v -> Alcotest.(check int) "gain caught at entry" 5 v.Diff.index);
  match
    Diff.replay hg ~k:3 ~init
      ~log:
        (corrupt_at 9 (fun e ->
             { e with Diff.cut_after = Option.map (fun c -> c + 1) e.Diff.cut_after }))
  with
  | Ok _ -> Alcotest.fail "corrupted cut claim not caught"
  | Error v -> Alcotest.(check int) "cut caught at entry" 9 v.Diff.index

(* ------------------------------------------------------------------ *)
(* Brute-force bipartitioner                                           *)

let test_best_bipartition_matches_enumeration () =
  let hg = Tg.circuit ~cells:6 ~pads:2 3 in
  let ctx = { Cost.s_max = 4; t_max = 8; f_max = None; m_lower = 2; total_pads = 2 } in
  let params = Cost.default_params in
  let oracle_assign, oracle_value = Oracle.best_bipartition params ctx hg in
  (* independent enumeration through the live state *)
  let n = Hg.num_nodes hg in
  let best = ref None in
  Tg.iter_assignments n 2 (fun assign ->
      let st = State.create hg ~k:2 ~assign:(fun v -> assign.(v)) in
      let v = Cost.evaluate params ctx st ~remainder:None ~step_k:1 in
      match !best with
      | Some bv when Cost.compare_value v bv >= 0 -> ()
      | _ -> best := Some v);
  match !best with
  | None -> Alcotest.fail "no assignments enumerated"
  | Some bv ->
    Alcotest.(check int) "same optimum" 0 (Cost.compare_value oracle_value bv);
    let st = State.create hg ~k:2 ~assign:(fun v -> oracle_assign.(v)) in
    let v = Cost.evaluate params ctx st ~remainder:None ~step_k:1 in
    Alcotest.(check int) "assignment evaluates to the reported value" 0
      (Cost.compare_value v oracle_value)

let test_best_bipartition_rejects_large () =
  let hg = Tg.circuit ~cells:30 ~pads:4 1 in
  let ctx = Cost.context_of Device.xc3020 ~delta:0.9 hg in
  Alcotest.check_raises "size guard"
    (Invalid_argument "Oracle.best_bipartition: more than 20 nodes") (fun () ->
      ignore (Oracle.best_bipartition Cost.default_params ctx hg))

(* ------------------------------------------------------------------ *)
(* Lexicographic comparator (table-driven)                             *)

let v ~f ~d ~t ~e = { Cost.feasible_blocks = f; distance = d; t_sum = t; io_bal = e }

let test_compare_value_table () =
  let cases =
    [
      ("more feasible blocks beat everything",
       v ~f:3 ~d:9.0 ~t:100 ~e:1.0, v ~f:2 ~d:0.0 ~t:0 ~e:0.0, -1);
      ("lower distance wins at equal f",
       v ~f:2 ~d:0.1 ~t:100 ~e:1.0, v ~f:2 ~d:0.2 ~t:0 ~e:0.0, -1);
      ("distances within 1e-9 tie, T_SUM decides",
       v ~f:2 ~d:0.1 ~t:5 ~e:1.0, v ~f:2 ~d:(0.1 +. 1e-12) ~t:6 ~e:0.0, -1);
      ("T_SUM ties fall to the external-I/O balance",
       v ~f:2 ~d:0.1 ~t:5 ~e:0.5, v ~f:2 ~d:0.1 ~t:5 ~e:0.7, -1);
      ("io balances within 1e-9 tie completely",
       v ~f:2 ~d:0.1 ~t:5 ~e:0.5, v ~f:2 ~d:0.1 ~t:5 ~e:(0.5 +. 1e-12), 0);
      ("identical tuples compare equal",
       v ~f:2 ~d:0.1 ~t:5 ~e:0.5, v ~f:2 ~d:0.1 ~t:5 ~e:0.5, 0);
    ]
  in
  List.iter
    (fun (name, a, b, expected) ->
      Alcotest.(check int) name expected (sgn (Cost.compare_value a b));
      Alcotest.(check int) (name ^ " (antisymmetric)") (-expected)
        (sgn (Cost.compare_value b a)))
    cases

(* ------------------------------------------------------------------ *)
(* Feasible-move-region windows (table-driven)                         *)

let windows_for ~s_max ~allow_violation ~two_block st =
  let ctx = { Cost.s_max; t_max = 50; f_max = None; m_lower = 2; total_pads = 4 } in
  let t =
    {
      Fpart.Improve.cfg = Fpart.Config.default;
      params = Cost.default_params;
      ctx;
      trace = Fpart.Trace.create ();
    }
  in
  Fpart.Improve.windows t st ~remainder:2 ~allow_violation ~two_block

let test_windows_table () =
  let hg = Tg.circuit ~cells:10 ~pads:2 1 in
  (* block 1 left empty on purpose: windows must not depend on content *)
  let st = State.create hg ~k:3 ~assign:(fun v -> if v = 0 then 0 else 2) in
  Alcotest.(check int) "block 1 really empty" 0 (State.cells_of st 1);
  let cases =
    (* (name, s_max, allow_violation, two_block, exp lower, exp upper) *)
    [
      ("two-block, violations allowed", 100, true, true, 95, 105);
      ("two-block, at the theoretical minimum", 100, false, true, 95, 100);
      ("multi-block, violations allowed", 100, true, false, 30, 105);
      ("multi-block, at the theoretical minimum", 100, false, false, 30, 100);
      (* lower = floor(ε_min·S_MAX), upper = ceil(ε_max·S_MAX): the
         window must contain the paper's real interval, so for
         S_MAX = 57 the upper bound is ceil(1.05·57) = ceil(59.85) = 60
         (plain truncation used to give 59 and forbade size 60). *)
      ("non-divisible S_MAX rounds outward (two-block)", 57, true, true, 54, 60);
      ("non-divisible S_MAX, strict upper", 57, false, true, 54, 57);
      ("non-divisible S_MAX rounds outward (multi-block)", 57, true, false, 17, 60);
    ]
  in
  List.iter
    (fun (name, s_max, allow_violation, two_block, exp_lo, exp_hi) ->
      let lower, upper = windows_for ~s_max ~allow_violation ~two_block st in
      Alcotest.(check int) (name ^ ": lower") exp_lo lower.(0);
      Alcotest.(check int) (name ^ ": upper") exp_hi upper.(0);
      Alcotest.(check int) (name ^ ": empty block same lower") exp_lo lower.(1);
      Alcotest.(check int) (name ^ ": empty block same upper") exp_hi upper.(1);
      Alcotest.(check int) (name ^ ": remainder lower unbounded") 0 lower.(2);
      Alcotest.(check int) (name ^ ": remainder upper unbounded") max_int upper.(2))
    cases

(* ------------------------------------------------------------------ *)
(* Self-check levels                                                   *)

let test_selfcheck_levels () =
  Alcotest.(check bool) "paranoid covers cheap" true
    (Selfcheck.at_least Selfcheck.Paranoid Selfcheck.Cheap);
  Alcotest.(check bool) "cheap covers cheap" true
    (Selfcheck.at_least Selfcheck.Cheap Selfcheck.Cheap);
  Alcotest.(check bool) "off does not cover cheap" false
    (Selfcheck.at_least Selfcheck.Off Selfcheck.Cheap);
  List.iter
    (fun l ->
      match Selfcheck.level_of_string (Selfcheck.level_name l) with
      | Ok l' -> Alcotest.(check bool) "level name round-trips" true (l = l')
      | Error e -> Alcotest.fail e)
    [ Selfcheck.Off; Selfcheck.Cheap; Selfcheck.Paranoid ];
  (match Selfcheck.level_of_string "PARANOID" with
  | Ok Selfcheck.Paranoid -> ()
  | _ -> Alcotest.fail "case-insensitive parse failed");
  match Selfcheck.level_of_string "bogus" with
  | Ok _ -> Alcotest.fail "accepted a bogus level"
  | Error _ -> ()

let test_selfcheck_validate_clean () =
  let hg = Tg.circuit ~cells:20 ~pads:4 2 in
  let st = State.create hg ~k:2 ~assign:(fun v -> v land 1) in
  let checks0 = Selfcheck.checks_run () in
  let viol0 = Selfcheck.violations_seen () in
  Alcotest.(check int) "clean state has no violations" 0 (Selfcheck.validate st);
  Alcotest.(check int) "check counted" (checks0 + 1) (Selfcheck.checks_run ());
  Alcotest.(check int) "no violation counted" viol0 (Selfcheck.violations_seen ())

let test_driver_selfcheck_clean () =
  List.iter
    (fun (level, cells) ->
      let hg = Tg.circuit ~cells ~pads:(cells / 8) 9 in
      let config = { Fpart.Config.default with selfcheck = level } in
      let checks0 = Selfcheck.checks_run () in
      let viol0 = Selfcheck.violations_seen () in
      let r = Fpart.Driver.run ~config hg Device.xc2064 in
      Alcotest.(check bool) "partition feasible" true r.Fpart.Driver.feasible;
      Alcotest.(check bool) "checks actually ran" true
        (Selfcheck.checks_run () > checks0);
      Alcotest.(check int) "no violations" viol0 (Selfcheck.violations_seen ()))
    [ (Selfcheck.Cheap, 160); (Selfcheck.Paranoid, 48) ]

(* ------------------------------------------------------------------ *)
(* Partition.Check consistency cross-validation (re-exported)          *)

let test_partition_check_consistent () =
  let hg = Tg.circuit ~cells:40 ~pads:6 5 in
  let ctx = Cost.context_of Device.xc3020 ~delta:0.9 hg in
  let st = State.create hg ~k:3 ~assign:(fun v -> v mod 3) in
  let r = Fpart_check.Check.of_state st ~ctx in
  Alcotest.(check bool) "report consistent" true r.Fpart_check.Check.consistent;
  List.iter
    (fun b ->
      Alcotest.(check bool) "size consistent" true b.Fpart_check.Check.size_consistent;
      Alcotest.(check bool) "pins consistent" true b.Fpart_check.Check.pins_consistent)
    r.Fpart_check.Check.blocks

let () =
  Alcotest.run "check"
    [
      ( "oracle",
        [
          Alcotest.test_case "best bipartition = enumeration" `Quick
            test_best_bipartition_matches_enumeration;
          Alcotest.test_case "best bipartition size guard" `Quick
            test_best_bipartition_rejects_large;
        ] );
      ( "diff",
        [
          Alcotest.test_case "corrupted log caught" `Quick test_corrupted_log_caught;
        ] );
      ( "compare",
        [ Alcotest.test_case "lexicographic table" `Quick test_compare_value_table ] );
      ( "windows",
        [ Alcotest.test_case "move-region table" `Quick test_windows_table ] );
      ( "selfcheck",
        [
          Alcotest.test_case "levels" `Quick test_selfcheck_levels;
          Alcotest.test_case "validate clean state" `Quick test_selfcheck_validate_clean;
          Alcotest.test_case "driver under selfcheck" `Quick test_driver_selfcheck_clean;
        ] );
      ( "partition-check",
        [
          Alcotest.test_case "report cross-validates" `Quick
            test_partition_check_consistent;
        ] );
      ( "property",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_incremental_matches_oracle;
            prop_gain_agreement;
            prop_evaluate_agreement;
            prop_replay_clean;
          ] );
    ]
