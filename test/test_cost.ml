(* Cost: infeasibility distances and the lexicographic solution value
   (paper sections 3.3-3.4). *)

module Hg = Hypergraph.Hgraph
module State = Partition.State
module Cost = Partition.Cost

let params = Cost.default_params
let ctx = { Cost.s_max = 100; t_max = 50; f_max = None; m_lower = 4; total_pads = 40 }

let test_default_params () =
  Alcotest.(check (float 0.0)) "lambda_s" 0.4 params.Cost.lambda_s;
  Alcotest.(check (float 0.0)) "lambda_t" 0.6 params.Cost.lambda_t;
  Alcotest.(check (float 0.0)) "lambda_r" 0.1 params.Cost.lambda_r

let test_block_distance_feasible () =
  Alcotest.(check (float 1e-9)) "inside" 0.0
    (Cost.block_distance params ctx ~size:100 ~pins:50 ~flops:0)

let test_block_distance_size () =
  (* size 150: d^S = 0.5, weighted 0.4 * 0.5 = 0.2 *)
  Alcotest.(check (float 1e-9)) "size overflow" 0.2
    (Cost.block_distance params ctx ~size:150 ~pins:10 ~flops:0)

let test_block_distance_pins () =
  (* pins 75: d^T = 0.5, weighted 0.6 * 0.5 = 0.3 *)
  Alcotest.(check (float 1e-9)) "pin overflow" 0.3
    (Cost.block_distance params ctx ~size:10 ~pins:75 ~flops:0)

let test_block_distance_both () =
  Alcotest.(check (float 1e-9)) "both" 0.5
    (Cost.block_distance params ctx ~size:150 ~pins:75 ~flops:0)

let test_io_weight_dominates () =
  (* equal relative violations: the pin term must weigh more *)
  let d_size = Cost.block_distance params ctx ~size:120 ~pins:0 ~flops:0 in
  let d_pins = Cost.block_distance params ctx ~size:0 ~pins:60 ~flops:0 in
  Alcotest.(check bool) "lambda_t > lambda_s" true (d_pins > d_size)

let test_deviation_penalty () =
  (* remainder 350, step 1: remaining = 4 - 1 + 1 = 4 -> S_AVG = 87.5 <= 100 *)
  Alcotest.(check (float 1e-9)) "fits" 0.0
    (Cost.deviation_penalty ctx ~remainder_size:350 ~step_k:1);
  (* remainder 350, step 2: remaining = 3 -> S_AVG ~ 116.7 > 100 *)
  let expected = 350.0 /. 3.0 /. 100.0 in
  Alcotest.(check (float 1e-9)) "penalised" expected
    (Cost.deviation_penalty ctx ~remainder_size:350 ~step_k:2);
  (* beyond M the denominator clamps to 1 *)
  let expected = 350.0 /. 100.0 in
  Alcotest.(check (float 1e-9)) "clamped" expected
    (Cost.deviation_penalty ctx ~remainder_size:350 ~step_k:9)

let simple_state sizes =
  (* one cell per block with the requested size; no nets *)
  let b = Hg.Builder.create () in
  Array.iteri
    (fun i s -> ignore (Hg.Builder.add_cell b ~name:(string_of_int i) ~size:s))
    sizes;
  let h = Hg.Builder.freeze b in
  State.create h ~k:(Array.length sizes) ~assign:(fun v -> v)

let test_classify () =
  let st = simple_state [| 50; 80; 100 |] in
  Alcotest.(check bool) "feasible" true (Cost.classify ctx st = Cost.Feasible);
  let st = simple_state [| 50; 80; 150 |] in
  Alcotest.(check bool) "semi" true (Cost.classify ctx st = Cost.Semi_feasible 2);
  let st = simple_state [| 150; 80; 150 |] in
  Alcotest.(check bool) "infeasible" true
    (Cost.classify ctx st = Cost.Infeasible [ 0; 2 ])

let test_infeasibility_sum () =
  let st = simple_state [| 150; 150 |] in
  (* two blocks at 0.2 each, no remainder penalty *)
  Alcotest.(check (float 1e-9)) "sum" 0.4
    (Cost.infeasibility params ctx st ~remainder:None ~step_k:1);
  (* with remainder = block 1 of size 150, step 4: remaining=1,
     S_AVG=150 > 100 -> d_R = 1.5 weighted by 0.1 *)
  Alcotest.(check (float 1e-9)) "with penalty" (0.4 +. 0.15)
    (Cost.infeasibility params ctx st ~remainder:(Some 1) ~step_k:4)

let test_io_balance () =
  (* T^E_AVG = 40/4 = 10.  Blocks with fewer pads contribute. *)
  let b = Hg.Builder.create () in
  for i = 0 to 39 do
    ignore (Hg.Builder.add_pad b ~name:(string_of_int i))
  done;
  let h = Hg.Builder.freeze b in
  (* block0: 20 pads, block1: 20, block2: 0, block3: 0 *)
  let st = State.create h ~k:4 ~assign:(fun v -> if v < 20 then 0 else 1) in
  Alcotest.(check (float 1e-9)) "two starving blocks" 2.0 (Cost.io_balance ctx st);
  (* perfectly balanced: zero *)
  let st = State.create h ~k:4 ~assign:(fun v -> v mod 4) in
  Alcotest.(check (float 1e-9)) "balanced" 0.0 (Cost.io_balance ctx st)

let v ~f ~d ~t ~e = { Cost.feasible_blocks = f; distance = d; t_sum = t; io_bal = e }

let test_compare_feasible_first () =
  let better = v ~f:3 ~d:9.0 ~t:999 ~e:9.0 in
  let worse = v ~f:2 ~d:0.0 ~t:0 ~e:0.0 in
  Alcotest.(check bool) "f wins" true (Cost.compare_value better worse < 0)

let test_compare_distance_second () =
  let a = v ~f:2 ~d:0.1 ~t:999 ~e:9.0 in
  let b = v ~f:2 ~d:0.2 ~t:0 ~e:0.0 in
  Alcotest.(check bool) "d wins" true (Cost.compare_value a b < 0)

let test_compare_tsum_third () =
  let a = v ~f:2 ~d:0.1 ~t:10 ~e:9.0 in
  let b = v ~f:2 ~d:0.1 ~t:11 ~e:0.0 in
  Alcotest.(check bool) "t wins" true (Cost.compare_value a b < 0)

let test_compare_iobal_last () =
  let a = v ~f:2 ~d:0.1 ~t:10 ~e:0.5 in
  let b = v ~f:2 ~d:0.1 ~t:10 ~e:0.6 in
  Alcotest.(check bool) "e wins" true (Cost.compare_value a b < 0);
  Alcotest.(check int) "equal" 0 (Cost.compare_value a a)

let test_compare_float_tolerance () =
  let a = v ~f:2 ~d:0.1 ~t:10 ~e:0.0 in
  let b = v ~f:2 ~d:(0.1 +. 1e-12) ~t:10 ~e:0.0 in
  Alcotest.(check int) "noise ignored" 0 (Cost.compare_value a b)

let test_ff_constraint () =
  let ctx_ff = { ctx with Cost.f_max = Some 20 } in
  Alcotest.(check bool) "within" true
    (Cost.block_feasible ctx_ff ~size:10 ~pins:10 ~flops:20);
  Alcotest.(check bool) "over" false
    (Cost.block_feasible ctx_ff ~size:10 ~pins:10 ~flops:21);
  (* 30 flops vs cap 20: overflow 0.5, weighted by lambda_f = 0.4 *)
  Alcotest.(check (float 1e-9)) "ff distance" 0.2
    (Cost.block_distance params ctx_ff ~size:0 ~pins:0 ~flops:30);
  (* disabled when f_max is None *)
  Alcotest.(check bool) "disabled" true
    (Cost.block_feasible ctx ~size:10 ~pins:10 ~flops:1_000_000)

let test_context_of () =
  let spec = Netlist.Generator.default_spec ~name:"c" ~cells:283 ~pads:72 ~seed:1 in
  let h = Netlist.Generator.generate spec in
  let c = Cost.context_of Device.xc3020 ~delta:0.9 h in
  Alcotest.(check int) "s_max" 57 c.Cost.s_max;
  Alcotest.(check int) "t_max" 64 c.Cost.t_max;
  Alcotest.(check int) "m (c3540 case)" 5 c.Cost.m_lower;
  Alcotest.(check int) "pads" 72 c.Cost.total_pads;
  Alcotest.(check (option int)) "ff capacity (2 FF/CLB derated)" (Some 114) c.Cost.f_max

let arb_value =
  QCheck.map
    (fun (f, d, t, e) ->
      v ~f:(f mod 8) ~d:(Float.abs d) ~t:(t mod 1000) ~e:(Float.abs e))
    QCheck.(quad (int_bound 100) (float_bound_inclusive 5.0) (int_bound 10_000)
              (float_bound_inclusive 5.0))

let prop_compare_antisym =
  QCheck.Test.make ~count:300 ~name:"compare_value is antisymmetric"
    (QCheck.pair arb_value arb_value)
    (fun (a, b) ->
      let ab = Cost.compare_value a b and ba = Cost.compare_value b a in
      (ab > 0 && ba < 0) || (ab < 0 && ba > 0) || (ab = 0 && ba = 0))

let prop_compare_transitive =
  QCheck.Test.make ~count:300 ~name:"compare_value is transitive on <="
    (QCheck.triple arb_value arb_value arb_value)
    (fun (a, b, c) ->
      let le x y = Cost.compare_value x y <= 0 in
      (not (le a b && le b c)) || le a c)

let prop_distance_nonneg =
  QCheck.Test.make ~count:200 ~name:"block distance is non-negative"
    QCheck.(pair (int_bound 500) (int_bound 300))
    (fun (size, pins) -> Cost.block_distance params ctx ~size ~pins ~flops:0 >= 0.0)

(* The dirty-block tracker must stay bitwise equal to a from-scratch
   [evaluate] under arbitrary interleaved moves — including bulk
   restores, which invalidate many blocks at once. *)
let prop_tracker_bitwise_equal =
  QCheck.Test.make ~count:50 ~name:"tracked_evaluate bitwise equals evaluate"
    QCheck.(
      triple (int_range 20 80) (int_range 2 5)
        (small_list (pair small_nat small_nat)))
    (fun (cells, k, moves) ->
      let h = Fpart_testgen.circuit ~name:"ct" ~cells (cells + k) in
      let st = State.create h ~k ~assign:(fun v -> v mod k) in
      let remainder = Some (k - 1) in
      let tr = Cost.tracker params ctx st ~remainder ~step_k:2 in
      let initial = State.assignment st in
      let same st =
        let a = Cost.evaluate params ctx st ~remainder ~step_k:2 in
        let b = Cost.tracked_evaluate tr st in
        a.Cost.feasible_blocks = b.Cost.feasible_blocks
        && Float.equal a.Cost.distance b.Cost.distance
        && a.Cost.t_sum = b.Cost.t_sum
        && Float.equal a.Cost.io_bal b.Cost.io_bal
      in
      let ok = ref (same st) in
      List.iter
        (fun (v, b) ->
          State.move st (v mod Hg.num_nodes h) (b mod k);
          ok := !ok && same st)
        moves;
      (* bulk restore: every block dirty at once *)
      State.load_assignment st initial;
      !ok && same st)

let () =
  Alcotest.run "cost"
    [
      ( "unit",
        [
          Alcotest.test_case "published lambdas" `Quick test_default_params;
          Alcotest.test_case "distance feasible" `Quick test_block_distance_feasible;
          Alcotest.test_case "distance size" `Quick test_block_distance_size;
          Alcotest.test_case "distance pins" `Quick test_block_distance_pins;
          Alcotest.test_case "distance both" `Quick test_block_distance_both;
          Alcotest.test_case "io weight dominates" `Quick test_io_weight_dominates;
          Alcotest.test_case "deviation penalty" `Quick test_deviation_penalty;
          Alcotest.test_case "classify" `Quick test_classify;
          Alcotest.test_case "infeasibility sum" `Quick test_infeasibility_sum;
          Alcotest.test_case "io balance" `Quick test_io_balance;
          Alcotest.test_case "ff constraint" `Quick test_ff_constraint;
          Alcotest.test_case "compare: f first" `Quick test_compare_feasible_first;
          Alcotest.test_case "compare: d second" `Quick test_compare_distance_second;
          Alcotest.test_case "compare: T third" `Quick test_compare_tsum_third;
          Alcotest.test_case "compare: dE last" `Quick test_compare_iobal_last;
          Alcotest.test_case "compare: tolerance" `Quick test_compare_float_tolerance;
          Alcotest.test_case "context_of" `Quick test_context_of;
        ] );
      ( "property",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_compare_antisym;
            prop_compare_transitive;
            prop_distance_nonneg;
            prop_tracker_bitwise_equal;
          ] );
    ]
