(* Canonical workload digests: Hgraph.digest must be a function of the
   named structure only (invariant under node relabelings), and
   Config.digest must move exactly when a result-relevant knob moves.
   These are the cache keys of fpart_serve and the grouping keys of
   fpart_inspect trend/regress, so a silent change here silently
   cross-pollinates baselines. *)

module Hg = Hypergraph.Hgraph
module Sm = Prng.Splitmix
module Tg = Fpart_testgen

(* A random permutation that maps cells to cell positions and pads to
   pad positions — the only relabelings [Tg.relabel] accepts. *)
let kind_stable_permutation hg seed =
  let n = Hg.num_nodes hg in
  let cells = ref [] and pads = ref [] in
  Hg.iter_nodes
    (fun v -> if Hg.is_pad hg v then pads := v :: !pads else cells := v :: !cells)
    hg;
  let perm = Array.init n Fun.id in
  let scatter rng group =
    let group = Array.of_list (List.rev group) in
    let shuffled = Array.copy group in
    Sm.shuffle rng shuffled;
    Array.iteri (fun i v -> perm.(v) <- shuffled.(i)) group
  in
  let rng = Sm.create seed in
  scatter rng !cells;
  scatter rng !pads;
  perm

let prop_digest_relabel_invariant =
  QCheck.Test.make ~count:40 ~name:"digest is invariant under node relabeling"
    (Tg.arb_scene ~max_cells:80 ())
    (fun sc ->
      let hg = Tg.scene_graph sc in
      let perm = kind_stable_permutation hg (sc.Tg.sc_seed + 1) in
      Hg.digest hg = Hg.digest (Tg.relabel hg ~perm))

let prop_digest_pad_order_invariant =
  QCheck.Test.make ~count:40 ~name:"digest is invariant under pad permutation"
    (Tg.arb_scene ~max_cells:60 ())
    (fun sc ->
      let hg = Tg.scene_graph sc in
      let perm = Tg.pad_permutation hg (sc.Tg.sc_seed + 2) in
      Hg.digest hg = Hg.digest (Tg.relabel hg ~perm))

(* Rebuild [hg] verbatim through [edit], which may tweak one node or
   add structure; the digest must notice. *)
let rebuild ?(resize = fun _ s -> s) ?(extra = fun _ -> ()) hg =
  let b = Hg.Builder.create () in
  Hg.iter_nodes
    (fun v ->
      ignore
        (match Hg.kind hg v with
        | Hg.Cell ->
          Hg.Builder.add_cell b ~flops:(Hg.flops hg v) ~name:(Hg.name hg v)
            ~size:(resize v (Hg.size hg v))
        | Hg.Pad -> Hg.Builder.add_pad b ~name:(Hg.name hg v)))
    hg;
  Hg.iter_nets
    (fun e ->
      ignore
        (Hg.Builder.add_net b ~name:(Hg.net_name hg e)
           (Array.to_list (Hg.pins hg e))))
    hg;
  extra b;
  Hg.Builder.freeze b

let test_digest_sensitive_to_structure () =
  let hg = Tg.circuit ~cells:40 ~pads:5 9 in
  let d0 = Hg.digest hg in
  Alcotest.(check string) "verbatim rebuild keeps the digest" d0
    (Hg.digest (rebuild hg));
  let bigger = rebuild ~resize:(fun v s -> if v = 0 then s + 1 else s) hg in
  Alcotest.(check bool) "a cell size change moves the digest" true
    (d0 <> Hg.digest bigger);
  let extra_net b =
    ignore (Hg.Builder.add_net b ~name:"digest_extra" [ 0; 1 ])
  in
  Alcotest.(check bool) "an added net moves the digest" true
    (d0 <> Hg.digest (rebuild ~extra:extra_net hg))

let test_config_digest_tracks_knobs () =
  let d0 = Fpart.Config.digest Fpart.Config.default in
  let with_seed =
    Fpart.Config.digest { Fpart.Config.default with Fpart.Config.seed = 99 }
  in
  Alcotest.(check bool) "seed is result-relevant" true (d0 <> with_seed);
  let with_jobs =
    Fpart.Config.digest { Fpart.Config.default with Fpart.Config.jobs = 7 }
  in
  Alcotest.(check string) "jobs is not result-relevant" d0 with_jobs;
  Alcotest.(check bool) "extra tag separates frontends" true
    (d0 <> Fpart.Config.digest ~extra:"algo=kwayx" Fpart.Config.default)

let () =
  Alcotest.run "digest"
    [
      ( "hgraph",
        [
          Alcotest.test_case "structural edits noticed" `Quick
            test_digest_sensitive_to_structure;
        ] );
      ( "config",
        [
          Alcotest.test_case "knob sensitivity" `Quick
            test_config_digest_tracks_knobs;
        ] );
      ( "property",
        List.map QCheck_alcotest.to_alcotest
          [ prop_digest_relabel_invariant; prop_digest_pad_order_invariant ] );
    ]
