(* Driver: FPART (Algorithm 1) end to end, plus the k-way.x baseline. *)

module Hg = Hypergraph.Hgraph
module State = Partition.State
module Driver = Fpart.Driver
module Kwayx = Fpart.Kwayx

let circuit ?(cells = 300) ?(pads = 40) seed =
  Fpart_testgen.circuit ~name:"drv" ~cells ~pads seed

let check_partition h device delta k assignment =
  let st = State.create h ~k ~assign:(fun v -> assignment.(v)) in
  let s_max = Device.s_max device ~delta in
  for b = 0 to k - 1 do
    if State.size_of st b > s_max then
      Alcotest.failf "block %d size %d > %d" b (State.size_of st b) s_max;
    if State.pins_of st b > device.Device.t_max then
      Alcotest.failf "block %d pins %d > %d" b (State.pins_of st b) device.Device.t_max
  done;
  st

let test_end_to_end () =
  let h = circuit 42 in
  let r = Driver.run h Device.xc3020 in
  Alcotest.(check bool) "feasible" true r.Driver.feasible;
  Alcotest.(check bool) "k >= M" true (r.Driver.k >= r.Driver.m_lower);
  ignore (check_partition h Device.xc3020 r.Driver.delta r.Driver.k r.Driver.assignment)

let test_every_node_assigned () =
  let h = circuit ~cells:120 7 in
  let r = Driver.run h Device.xc3042 in
  Alcotest.(check int) "assignment length" (Hg.num_nodes h)
    (Array.length r.Driver.assignment);
  Array.iter
    (fun b -> if b < 0 || b >= r.Driver.k then Alcotest.fail "out-of-range block")
    r.Driver.assignment

let test_single_device () =
  let h = circuit ~cells:30 ~pads:8 3 in
  let r = Driver.run h Device.xc3090 in
  Alcotest.(check int) "one device" 1 r.Driver.k;
  Alcotest.(check bool) "feasible" true r.Driver.feasible;
  Alcotest.(check int) "no iterations" 0 r.Driver.iterations

let test_deterministic () =
  let h = circuit ~cells:150 9 in
  let r1 = Driver.run h Device.xc3020 in
  let r2 = Driver.run h Device.xc3020 in
  Alcotest.(check int) "same k" r1.Driver.k r2.Driver.k;
  Alcotest.(check (array int)) "same assignment" r1.Driver.assignment r2.Driver.assignment

let test_trace_structure () =
  let h = circuit ~cells:150 11 in
  let r = Driver.run h Device.xc3020 in
  let events = r.Driver.trace in
  let has_bipartition =
    List.exists (function Fpart.Trace.Bipartition _ -> true | _ -> false) events
  in
  let has_pair =
    List.exists
      (function
        | Fpart.Trace.Improve { kind = Fpart.Trace.Pair_latest; _ } -> true
        | _ -> false)
      events
  in
  let done_last =
    match List.rev events with Fpart.Trace.Done _ :: _ -> true | _ -> false
  in
  Alcotest.(check bool) "bipartition traced" true has_bipartition;
  Alcotest.(check bool) "pair pass traced" true has_pair;
  Alcotest.(check bool) "ends with Done" true done_last

let test_trace_schedule_kinds () =
  (* M <= N_small circuit: the all-blocks pass must appear *)
  let h = circuit ~cells:300 13 in
  let r = Driver.run h Device.xc3020 in
  let has k =
    List.exists
      (function Fpart.Trace.Improve { kind; _ } -> kind = k | _ -> false)
      r.Driver.trace
  in
  Alcotest.(check bool) "all-blocks pass" true (has Fpart.Trace.All_blocks);
  Alcotest.(check bool) "min-size pass" true (has Fpart.Trace.Min_size);
  Alcotest.(check bool) "min-io pass" true (has Fpart.Trace.Min_io);
  Alcotest.(check bool) "max-free pass" true (has Fpart.Trace.Max_free)

let test_final_state_matches () =
  let h = circuit ~cells:100 15 in
  let r = Driver.run h Device.xc3042 in
  let st = Driver.final_state r h in
  Alcotest.(check int) "cut consistent" r.Driver.cut (State.cut_size st);
  Alcotest.(check int) "pins consistent" r.Driver.total_pins (State.total_pins st)

let test_config_seed_changes_nothing_material () =
  (* different seeds may change tie-breaks but must stay feasible *)
  let h = circuit ~cells:150 17 in
  List.iter
    (fun seed ->
      let config = { Fpart.Config.default with seed } in
      let r = Driver.run ~config h Device.xc3020 in
      Alcotest.(check bool) "feasible" true r.Driver.feasible)
    [ 1; 2; 3 ]

let test_io_critical_circuit () =
  (* pads dominate: M comes from the pin bound *)
  let h = circuit ~cells:60 ~pads:200 19 in
  let r = Driver.run h Device.xc3020 in
  Alcotest.(check bool) "M from pins" true (r.Driver.m_lower >= 4);
  Alcotest.(check bool) "feasible" true r.Driver.feasible;
  ignore (check_partition h Device.xc3020 r.Driver.delta r.Driver.k r.Driver.assignment)

let test_kwayx_end_to_end () =
  let h = circuit ~cells:300 21 in
  let r = Kwayx.run h Device.xc3020 in
  Alcotest.(check bool) "feasible" true r.Kwayx.feasible;
  ignore (check_partition h Device.xc3020 0.9 r.Kwayx.k r.Kwayx.assignment)

let test_kwayx_single_device () =
  let h = circuit ~cells:30 23 in
  let r = Kwayx.run h Device.xc3090 in
  Alcotest.(check int) "one device" 1 r.Kwayx.k

let test_fpart_not_worse_than_kwayx () =
  (* the paper's core claim, on a batch of seeds *)
  List.iter
    (fun seed ->
      let h = circuit ~cells:250 ~pads:30 seed in
      let f = Driver.run h Device.xc3020 in
      let kw = Kwayx.run h Device.xc3020 in
      if f.Driver.k > kw.Kwayx.k then
        Alcotest.failf "seed %d: FPART %d > kwayx %d" seed f.Driver.k kw.Kwayx.k)
    [ 31; 32; 33 ]

let test_disconnected_circuit () =
  (* BLIF-sourced circuits can be disconnected; the driver must still
     partition every component *)
  let b = Hg.Builder.create () in
  let mk tag =
    let c = Array.init 20 (fun i -> Hg.Builder.add_cell b ~name:(Printf.sprintf "%s%d" tag i) ~size:1) in
    for i = 0 to 18 do
      ignore (Hg.Builder.add_net b ~name:(Printf.sprintf "%sn%d" tag i) [ c.(i); c.(i + 1) ])
    done;
    let p = Hg.Builder.add_pad b ~name:(tag ^ "p") in
    ignore (Hg.Builder.add_net b ~name:(tag ^ "np") [ p; c.(0) ])
  in
  mk "a";
  mk "b";
  mk "c";
  let h = Hg.Builder.freeze b in
  Alcotest.(check bool) "really disconnected" false
    (Hypergraph.Traversal.is_connected h);
  let tiny = { Device.dev_name = "T25"; family = Device.XC3000; s_ds = 25; t_max = 16 } in
  let config = { Fpart.Config.default with delta = Some 1.0 } in
  let r = Driver.run ~config h tiny in
  Alcotest.(check bool) "feasible" true r.Driver.feasible;
  Alcotest.(check bool) "k >= 3" true (r.Driver.k >= 3)

(* --- isolated multi-start (the serving path) --- *)

let crash_on seeds config hg device =
  if List.mem config.Fpart.Config.seed seeds then
    failwith (Printf.sprintf "injected crash (seed %d)" config.Fpart.Config.seed)
  else Driver.run ~config hg device

let test_pick_best_opt_empty () =
  Alcotest.(check bool) "empty fan-out is None" true
    (Driver.pick_best_opt [||] = None)

let test_isolated_matches_run_best () =
  let h = circuit ~cells:120 11 in
  let best = Driver.run_best ~runs:3 h Device.xc3042 in
  match Driver.run_best_isolated ~runs:3 h Device.xc3042 with
  | Error e -> Alcotest.failf "isolated run failed: %s" e
  | Ok r ->
    Alcotest.(check int) "same k" best.Driver.k r.Driver.k;
    Alcotest.(check int) "same cut" best.Driver.cut r.Driver.cut;
    Alcotest.(check bool) "same assignment" true
      (best.Driver.assignment = r.Driver.assignment)

let test_isolated_survives_partial_crash () =
  let h = circuit ~cells:100 5 in
  let seed0 = Fpart.Config.default.Fpart.Config.seed in
  match
    Driver.run_best_isolated ~run_one:(crash_on [ seed0 ]) ~runs:3 h
      Device.xc3042
  with
  | Error e -> Alcotest.failf "all-but-one crash should survive: %s" e
  | Ok r ->
    Alcotest.(check bool) "survivor feasible" true r.Driver.feasible;
    ignore (check_partition h Device.xc3042 r.Driver.delta r.Driver.k r.Driver.assignment)

let test_isolated_all_crash_is_error () =
  let h = circuit ~cells:60 2 in
  let seed0 = Fpart.Config.default.Fpart.Config.seed in
  match
    Driver.run_best_isolated
      ~run_one:(crash_on [ seed0; seed0 + 1 ])
      ~runs:2 h Device.xc3042
  with
  | Ok _ -> Alcotest.fail "every start crashed yet got Ok"
  | Error e ->
    let contains sub =
      let n = String.length sub and m = String.length e in
      let rec go i = i + n <= m && (String.sub e i n = sub || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) "error names the crash" true (contains "injected crash");
    Alcotest.(check bool) "error covers both seeds" true
      (contains (Printf.sprintf "seed %d" seed0)
      && contains (Printf.sprintf "seed %d" (seed0 + 1)))

let test_cpu_time_positive () =
  let h = circuit ~cells:100 25 in
  let r = Driver.run h Device.xc3020 in
  Alcotest.(check bool) "cpu measured" true (r.Driver.cpu_seconds >= 0.0)

let prop_driver_valid_partition =
  QCheck.Test.make ~count:8 ~name:"FPART always returns a valid feasible partition"
    QCheck.(pair (int_range 60 250) (int_range 0 10_000))
    (fun (cells, seed) ->
      let h = circuit ~cells ~pads:(max 4 (cells / 10)) seed in
      let r = Driver.run h Device.xc3042 in
      let st = Driver.final_state r h in
      let s_max = Device.s_max Device.xc3042 ~delta:r.Driver.delta in
      let ok = ref r.Driver.feasible in
      for b = 0 to r.Driver.k - 1 do
        if State.size_of st b > s_max || State.pins_of st b > 96 then ok := false
      done;
      !ok && r.Driver.k >= r.Driver.m_lower)

let () =
  Alcotest.run "driver"
    [
      ( "fpart",
        [
          Alcotest.test_case "end to end" `Quick test_end_to_end;
          Alcotest.test_case "all assigned" `Quick test_every_node_assigned;
          Alcotest.test_case "single device" `Quick test_single_device;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "trace structure" `Quick test_trace_structure;
          Alcotest.test_case "trace schedule kinds" `Quick test_trace_schedule_kinds;
          Alcotest.test_case "final state matches" `Quick test_final_state_matches;
          Alcotest.test_case "seeds stay feasible" `Quick test_config_seed_changes_nothing_material;
          Alcotest.test_case "io-critical" `Quick test_io_critical_circuit;
          Alcotest.test_case "disconnected circuit" `Quick test_disconnected_circuit;
          Alcotest.test_case "cpu time" `Quick test_cpu_time_positive;
        ] );
      ( "isolated",
        [
          Alcotest.test_case "pick_best_opt empty" `Quick test_pick_best_opt_empty;
          Alcotest.test_case "matches run_best" `Quick test_isolated_matches_run_best;
          Alcotest.test_case "partial crash survives" `Quick
            test_isolated_survives_partial_crash;
          Alcotest.test_case "all-crash is a typed error" `Quick
            test_isolated_all_crash_is_error;
        ] );
      ( "kwayx",
        [
          Alcotest.test_case "end to end" `Quick test_kwayx_end_to_end;
          Alcotest.test_case "single device" `Quick test_kwayx_single_device;
          Alcotest.test_case "fpart <= kwayx" `Quick test_fpart_not_worse_than_kwayx;
        ] );
      ( "property",
        List.map QCheck_alcotest.to_alcotest [ prop_driver_valid_partition ] );
    ]
