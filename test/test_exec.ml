(* Fpart_exec: domain pool determinism, batch isolation, and the
   observability merge contract.

   FPART_TEST_JOBS (default 2) sets the widest pool exercised — CI runs
   the suite a second time with FPART_TEST_JOBS=4. *)

module Pool = Fpart_exec.Pool
module Batch = Fpart_exec.Batch
module Driver = Fpart.Driver
module Metrics = Fpart_obs.Metrics
module Json = Fpart_obs.Json
module Hg = Hypergraph.Hgraph
module State = Partition.State
module Tg = Fpart_testgen

let test_jobs =
  match Sys.getenv_opt "FPART_TEST_JOBS" with
  | Some s -> ( match int_of_string_opt s with Some n when n >= 1 -> n | _ -> 2)
  | None -> 2

let circuit ?(cells = 240) ?(pads = 32) seed =
  Tg.circuit ~name:"exec" ~cells ~pads seed

(* ------------------------------------------------------------------ *)
(* Pool basics                                                        *)
(* ------------------------------------------------------------------ *)

let test_create_invalid () =
  Alcotest.check_raises "jobs = 0"
    (Invalid_argument "Fpart_exec.Pool.create: jobs < 1") (fun () ->
      ignore (Pool.create ~jobs:0))

let test_map_sequential_pool () =
  Pool.with_pool ~jobs:1 (fun pool ->
      let out = Pool.map pool (fun i x -> (i * 10) + x) [| 1; 2; 3 |] in
      Alcotest.(check (array int)) "jobs=1 map" [| 1; 12; 23 |] out)

let test_map_empty () =
  Pool.with_pool ~jobs:test_jobs (fun pool ->
      let out = Pool.map pool (fun _ x -> x) [||] in
      Alcotest.(check int) "empty input" 0 (Array.length out))

let test_map_exception_lowest_index () =
  Pool.with_pool ~jobs:test_jobs (fun pool ->
      Alcotest.check_raises "first failing index wins" (Failure "task 2")
        (fun () ->
          ignore
            (Pool.map pool
               (fun i () -> if i >= 2 then failwith (Printf.sprintf "task %d" i))
               (Array.make 6 ()))))

let test_pool_reusable_after_exception () =
  Pool.with_pool ~jobs:test_jobs (fun pool ->
      (try ignore (Pool.map pool (fun _ () -> failwith "boom") [| () |])
       with Failure _ -> ());
      let out = Pool.map pool (fun i () -> i * i) (Array.make 5 ()) in
      Alcotest.(check (array int)) "pool survives" [| 0; 1; 4; 9; 16 |] out)

let test_both () =
  Pool.with_pool ~jobs:test_jobs (fun pool ->
      let a, b = Pool.both pool (fun () -> "left") (fun () -> 42) in
      Alcotest.(check string) "fst" "left" a;
      Alcotest.(check int) "snd" 42 b)

let test_run_all () =
  Pool.with_pool ~jobs:test_jobs (fun pool ->
      let out = Pool.run_all pool [ (fun () -> 1); (fun () -> 2); (fun () -> 3) ] in
      Alcotest.(check (list int)) "run_all order" [ 1; 2; 3 ] out)

let test_nested_fork_inlines () =
  (* a task that forks again on the same pool must not deadlock — the
     inner fork degrades to inline execution on the worker *)
  Pool.with_pool ~jobs:test_jobs (fun pool ->
      let out =
        Pool.map pool
          (fun i () ->
            Array.fold_left ( + ) 0
              (Pool.map pool (fun j () -> (10 * i) + j) (Array.make 3 ())))
          (Array.make 4 ())
      in
      Alcotest.(check (array int)) "nested totals" [| 3; 33; 63; 93 |] out)

let test_map_seeded_deterministic () =
  let draw ~rng _ () = Prng.Splitmix.int rng 1_000_000 in
  let at jobs =
    Pool.with_pool ~jobs (fun pool ->
        Pool.map_seeded pool ~master_seed:99 draw (Array.make 8 ()))
  in
  let base = at 1 in
  List.iter
    (fun jobs ->
      Alcotest.(check (array int))
        (Printf.sprintf "map_seeded jobs=%d" jobs)
        base (at jobs))
    [ 2; test_jobs ]

(* ------------------------------------------------------------------ *)
(* QCheck: map is order- and length-preserving                        *)
(* ------------------------------------------------------------------ *)

let prop_map_order =
  (* one pool shared across iterations: spawn cost is paid once and the
     property also exercises pool reuse *)
  let pool = Pool.create ~jobs:test_jobs in
  QCheck.Test.make ~count:100 ~name:"Pool.map = Array.mapi"
    QCheck.(list small_int)
    (fun xs ->
      let arr = Array.of_list xs in
      let f i x = (i * 1009) + (x * 31) in
      Pool.map pool f arr = Array.mapi f arr)

(* ------------------------------------------------------------------ *)
(* Driver.run_best determinism                                        *)
(* ------------------------------------------------------------------ *)

let test_run_best_deterministic () =
  let h = circuit 5 in
  let base = Driver.run_best ~jobs:1 ~runs:4 h Device.xc2064 in
  Alcotest.(check bool) "multi-block" true (base.Driver.k > 1);
  List.iter
    (fun jobs ->
      let r = Driver.run_best ~jobs ~runs:4 h Device.xc2064 in
      let tag fmt = Printf.sprintf fmt jobs in
      Alcotest.(check int) (tag "k jobs=%d") base.Driver.k r.Driver.k;
      Alcotest.(check bool)
        (tag "feasible jobs=%d")
        base.Driver.feasible r.Driver.feasible;
      Alcotest.(check int) (tag "cut jobs=%d") base.Driver.cut r.Driver.cut;
      Alcotest.(check int)
        (tag "total_pins jobs=%d")
        base.Driver.total_pins r.Driver.total_pins;
      Alcotest.(check (array int))
        (tag "assignment jobs=%d")
        base.Driver.assignment r.Driver.assignment)
    [ 2; 4; test_jobs ]

let test_run_best_improves_or_ties () =
  let h = circuit 6 in
  let one = Driver.run ~config:Fpart.Config.default h Device.xc2064 in
  let best = Driver.run_best ~jobs:test_jobs ~runs:4 h Device.xc2064 in
  Alcotest.(check bool) "run_best never worse" true (best.Driver.k <= one.Driver.k)

let test_run_best_invalid () =
  let h = circuit ~cells:40 ~pads:8 1 in
  Alcotest.check_raises "runs = 0"
    (Invalid_argument "Driver.run_best: runs < 1") (fun () ->
      ignore (Driver.run_best ~runs:0 h Device.xc2064));
  Alcotest.check_raises "jobs = 0"
    (Invalid_argument "Driver.run_best: jobs < 1") (fun () ->
      ignore (Driver.run_best ~jobs:0 ~runs:2 h Device.xc2064))

let test_run_best_repeatable () =
  (* same config, same jobs: byte-identical result on repeated calls,
     for jobs = 1 and jobs = 4 *)
  let h = circuit ~cells:160 ~pads:24 8 in
  List.iter
    (fun jobs ->
      let a = Driver.run_best ~jobs ~runs:3 h Device.xc2064 in
      let b = Driver.run_best ~jobs ~runs:3 h Device.xc2064 in
      Alcotest.(check int) (Printf.sprintf "k repeatable jobs=%d" jobs)
        a.Driver.k b.Driver.k;
      Alcotest.(check (array int))
        (Printf.sprintf "assignment repeatable jobs=%d" jobs)
        a.Driver.assignment b.Driver.assignment)
    [ 1; 4 ]

(* ------------------------------------------------------------------ *)
(* Metamorphic properties: relabelings must not change the metrics     *)
(* ------------------------------------------------------------------ *)

(* Transport the driver's partition through a node relabeling and check
   every metric is preserved on the relabeled graph.  (The driver is not
   re-run on the relabeled circuit: id-based tie-breaks make the full
   output only metric-equivalent, not identical, under relabeling.) *)
let check_transported_partition h r perm =
  let h' = Tg.relabel h ~perm in
  let a' = Tg.transport ~perm r.Driver.assignment in
  let st = State.create h ~k:r.Driver.k ~assign:(fun v -> r.Driver.assignment.(v)) in
  let st' = State.create h' ~k:r.Driver.k ~assign:(fun v -> a'.(v)) in
  Alcotest.(check int) "cut invariant" (State.cut_size st) (State.cut_size st');
  Alcotest.(check int) "total pins invariant" (State.total_pins st)
    (State.total_pins st');
  for b = 0 to r.Driver.k - 1 do
    Alcotest.(check int) "block size invariant" (State.size_of st b)
      (State.size_of st' b);
    Alcotest.(check int) "block pins invariant" (State.pins_of st b)
      (State.pins_of st' b);
    Alcotest.(check int) "block pads invariant" (State.pads_of st b)
      (State.pads_of st' b)
  done;
  match Fpart_check.Oracle.diff_state st' with
  | [] -> ()
  | reason :: _ -> Alcotest.failf "relabeled state inconsistent: %s" reason

let test_relabel_invariance () =
  let h = circuit ~cells:150 ~pads:20 8 in
  let r = Driver.run h Device.xc2064 in
  Alcotest.(check bool) "multi-block" true (r.Driver.k > 1);
  List.iter
    (fun pseed ->
      check_transported_partition h r (Tg.permutation ~n:(Hg.num_nodes h) pseed))
    [ 1; 2; 3 ]

let test_pad_permutation_invariance () =
  let h = circuit ~cells:120 ~pads:40 9 in
  let r = Driver.run h Device.xc2064 in
  List.iter
    (fun pseed -> check_transported_partition h r (Tg.pad_permutation h pseed))
    [ 4; 5 ]

(* ------------------------------------------------------------------ *)
(* Metrics under domains                                              *)
(* ------------------------------------------------------------------ *)

let counters_json () =
  match Metrics.report () with
  | Json.Obj fields ->
    Json.to_string (List.assoc "counters" fields)
  | _ -> Alcotest.fail "report is not an object"

let test_counters_match_sequential () =
  let h = circuit 7 in
  let measure jobs =
    Metrics.reset ();
    ignore (Driver.run_best ~jobs ~runs:4 h Device.xc2064);
    let c = counters_json () in
    Metrics.reset ();
    c
  in
  let sequential = measure 1 in
  Alcotest.(check string) "counters jobs=N = jobs=1" sequential
    (measure test_jobs);
  Alcotest.(check string) "counters jobs=4 = jobs=1" sequential (measure 4)

(* ------------------------------------------------------------------ *)
(* Resource watermarks under domains                                  *)
(* ------------------------------------------------------------------ *)

module Resource = Fpart_obs.Resource

(* A peak only a worker domain ever observes must survive the join: Pool
   snapshots each worker's watermark and max-merges it into the caller,
   so a post-join summary reflects it regardless of jobs or task
   order. *)
let test_worker_watermark_merged () =
  List.iter
    (fun jobs ->
      Resource.reset ();
      Fun.protect
        ~finally:(fun () ->
          Resource.set_source None;
          Resource.reset ())
        (fun () ->
          (* every sample reports a distinct fake peak (an atomic tick),
             so whichever domain takes the 4th sample observes the
             maximum — installed before the pool spawns its domains *)
          let calls = Atomic.make 0 in
          Resource.set_source
            (Some
               (fun () ->
                 let n = 1 + Atomic.fetch_and_add calls 1 in
                 {
                   Resource.minor_words = 0.0;
                   promoted_words = 0.0;
                   major_words = 0.0;
                   minor_gcs = 0;
                   major_gcs = 0;
                   compactions = 0;
                   top_heap_words = 1000 * n;
                   os =
                     {
                       Resource.os_maxrss_kb = 100 * n;
                       os_utime_s = 0.0;
                       os_stime_s = 0.0;
                     };
                 }));
          Pool.with_pool ~jobs (fun pool ->
              ignore
                (Pool.map pool
                   (fun _ () -> ignore (Resource.sample ()))
                   (Array.make 4 ())));
          let w = Resource.watermark () in
          Alcotest.(check int)
            (Printf.sprintf "heap peak joined jobs=%d" jobs)
            4000 w.Resource.w_top_heap_words;
          Alcotest.(check int)
            (Printf.sprintf "rss peak joined jobs=%d" jobs)
            400 w.Resource.w_maxrss_kb))
    [ 1; 4; test_jobs ]

(* ------------------------------------------------------------------ *)
(* Batch                                                              *)
(* ------------------------------------------------------------------ *)

let test_batch_isolation () =
  Pool.with_pool ~jobs:test_jobs (fun pool ->
      let f x = if x = 13 then failwith "unlucky" else x * 2 in
      match Batch.run ~pool ~f [ 1; 13; 3 ] with
      | [ Ok 2; Error (Batch.Crashed { exn; _ }); Ok 6 ] ->
        Alcotest.(check bool) "exn text" true
          (String.length exn > 0
          && String.sub exn 0 7 = "Failure")
      | results ->
        Alcotest.failf "unexpected batch shape (%d results)"
          (List.length results))

let test_batch_timeout () =
  Pool.with_pool ~jobs:test_jobs (fun pool ->
      let f d = if d > 0.0 then Unix.sleepf d in
      match Batch.run ~timeout_s:0.05 ~pool ~f [ 0.0; 0.2 ] with
      | [ Ok (); Error (Batch.Timed_out { elapsed_s; limit_s }) ] ->
        Alcotest.(check bool) "elapsed over limit" true (elapsed_s > limit_s)
      | [ Ok (); Ok () ] -> Alcotest.fail "slow job not flagged"
      | results ->
        Alcotest.failf "unexpected batch shape (%d results)"
          (List.length results))

let test_driver_run_batch () =
  let jobs_list =
    List.map (fun seed -> (circuit ~cells:80 ~pads:16 seed, Device.xc2064)) [ 1; 2 ]
  in
  match Driver.run_batch ~jobs:test_jobs jobs_list with
  | [ Ok a; Ok b ] ->
    Alcotest.(check bool) "k positive" true (a.Driver.k >= 1 && b.Driver.k >= 1)
  | results ->
    Alcotest.failf "unexpected run_batch shape (%d results)"
      (List.length results)

let () =
  Alcotest.run "exec"
    [
      ( "pool",
        [
          Alcotest.test_case "create invalid" `Quick test_create_invalid;
          Alcotest.test_case "map jobs=1" `Quick test_map_sequential_pool;
          Alcotest.test_case "map empty" `Quick test_map_empty;
          Alcotest.test_case "exception lowest index" `Quick
            test_map_exception_lowest_index;
          Alcotest.test_case "reusable after exception" `Quick
            test_pool_reusable_after_exception;
          Alcotest.test_case "both" `Quick test_both;
          Alcotest.test_case "run_all" `Quick test_run_all;
          Alcotest.test_case "nested fork inlines" `Quick
            test_nested_fork_inlines;
          Alcotest.test_case "map_seeded deterministic" `Quick
            test_map_seeded_deterministic;
        ] );
      ("property", List.map QCheck_alcotest.to_alcotest [ prop_map_order ]);
      ( "driver",
        [
          Alcotest.test_case "run_best deterministic across jobs" `Slow
            test_run_best_deterministic;
          Alcotest.test_case "run_best improves or ties" `Slow
            test_run_best_improves_or_ties;
          Alcotest.test_case "run_best invalid args" `Quick
            test_run_best_invalid;
          Alcotest.test_case "run_best repeatable at jobs 1 and 4" `Slow
            test_run_best_repeatable;
          Alcotest.test_case "counters match sequential" `Slow
            test_counters_match_sequential;
        ] );
      ( "metamorphic",
        [
          Alcotest.test_case "relabeling invariance" `Quick test_relabel_invariance;
          Alcotest.test_case "pad permutation invariance" `Quick
            test_pad_permutation_invariance;
        ] );
      ( "resource",
        [
          Alcotest.test_case "worker watermark merged at join" `Quick
            test_worker_watermark_merged;
        ] );
      ( "batch",
        [
          Alcotest.test_case "exception isolation" `Quick test_batch_isolation;
          Alcotest.test_case "timeout" `Quick test_batch_timeout;
          Alcotest.test_case "driver run_batch" `Slow test_driver_run_batch;
        ] );
    ]
