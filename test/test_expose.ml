(* The telemetry exposition layer: every page Expose.render emits must
   survive its own strict Prometheus text-format parser with the
   registry invariants intact (unique families, cumulative buckets,
   _count = +Inf bucket = sum of the bucket deltas), the sliding
   histogram window must keep quantiles current while the lifetime
   aggregates stay monotone, and Recorder.reset must start a fresh
   measurement epoch (a long-lived daemon's p95 must not aggregate
   forever). *)

module Metrics = Fpart_obs.Metrics
module Recorder = Fpart_obs.Recorder
module Expose = Fpart_obs.Expose
module Json = Fpart_obs.Json

let setup () =
  Metrics.set_enabled true;
  Metrics.reset ();
  Expose.clear_gauges ()

let parse_ok text =
  match Expose.parse text with
  | Ok fams -> fams
  | Error e -> Alcotest.failf "render does not strict-parse: %s\n%s" e text

(* ------------------------------------------------------------------ *)
(* rendering *)

let test_counter_and_gauge () =
  setup ();
  let c = Metrics.counter "exp.alpha" in
  Metrics.add c 41;
  Metrics.incr c;
  Expose.set_gauge "exp.depth" ~help:"test gauge" (fun () -> 2.5);
  let fams = parse_ok (Expose.render ()) in
  Alcotest.(check (option (float 1e-9)))
    "counter value" (Some 42.0)
    (Expose.find fams "fpart_exp_alpha_total");
  Alcotest.(check (option (float 1e-9)))
    "gauge value" (Some 2.5)
    (Expose.find fams "fpart_exp_depth");
  Expose.remove_gauge "exp.depth";
  let fams = parse_ok (Expose.render ()) in
  Alcotest.(check (option (float 1e-9)))
    "gauge removed" None
    (Expose.find fams "fpart_exp_depth")

let test_histogram_family () =
  setup ();
  let h = Metrics.histogram "exp.lat_ms" in
  List.iter (Metrics.observe h) [ 0.1; 0.3; 3.0; 40.0; 20000.0; 99999.0 ];
  let fams = parse_ok (Expose.render ()) in
  let name = "fpart_exp_lat_ms" in
  Alcotest.(check (option (float 1e-9)))
    "_count is the observation count" (Some 6.0)
    (Expose.hist_count fams name);
  (match Expose.hist_sum fams name with
  | Some s -> Alcotest.(check (float 1e-6)) "_sum" 120042.4 s
  | None -> Alcotest.fail "missing _sum");
  let series = Expose.buckets fams name in
  Alcotest.(check int)
    "full ladder + Inf"
    (Array.length Metrics.bucket_bounds + 1)
    (List.length series);
  (match List.rev series with
  | (le, total) :: _ ->
    Alcotest.(check bool) "last bucket is +Inf" true (le = infinity);
    Alcotest.(check (float 1e-9)) "+Inf bucket = count" 6.0 total
  | [] -> Alcotest.fail "no buckets");
  (* cumulative and non-decreasing *)
  let rec mono = function
    | (_, a) :: ((_, b) :: _ as rest) -> a <= b && mono rest
    | _ -> true
  in
  Alcotest.(check bool) "cumulative buckets" true (mono series)

let test_engine_agnostic_names () =
  (* the exposition layer never names engines: whatever instrument
     names exist, the same mapping applies *)
  Alcotest.(check string) "dots" "fpart_serve_latency_cold_ms"
    (Expose.metric_name "serve.latency.cold_ms");
  Alcotest.(check string) "slashes and dashes" "fpart_mlevel_v_cycle"
    (Expose.metric_name "mlevel/v-cycle")

(* ------------------------------------------------------------------ *)
(* sliding window vs lifetime aggregates *)

let test_window_eviction () =
  setup ();
  let h = Metrics.histogram "exp.window" in
  for _ = 1 to 5000 do
    Metrics.observe h 1.0
  done;
  Alcotest.(check int) "lifetime count" 5000 (Metrics.count h);
  Alcotest.(check int) "window is bounded" Metrics.window_capacity
    (Metrics.window_count h);
  Alcotest.(check (float 1e-9)) "p50 before shift" 1.0 (Metrics.quantile h 0.5);
  (* a daemon whose latency jumps: the window must follow, the
     lifetime aggregates must keep counting *)
  for _ = 1 to Metrics.window_capacity do
    Metrics.observe h 9.0
  done;
  Alcotest.(check (float 1e-9)) "p50 tracks recent behaviour" 9.0
    (Metrics.quantile h 0.5);
  Alcotest.(check int) "lifetime count keeps growing"
    (5000 + Metrics.window_capacity)
    (Metrics.count h);
  Alcotest.(check (float 1e-3)) "lifetime sum includes evicted samples"
    (5000.0 +. (9.0 *. float_of_int Metrics.window_capacity))
    (Metrics.hist_sum h);
  let total = Array.fold_left ( + ) 0 (Metrics.bucket_totals h) in
  Alcotest.(check int) "bucket totals cover every observation"
    (5000 + Metrics.window_capacity) total

let test_snapshot_merge_with_eviction () =
  setup ();
  let h = Metrics.histogram "exp.merge" in
  let n = Metrics.window_capacity + 500 in
  for i = 1 to n do
    Metrics.observe h (float_of_int (i mod 7))
  done;
  let sum_before = Metrics.hist_sum h in
  let snap = Metrics.snapshot_and_reset () in
  Alcotest.(check int) "reset cleared the cell" 0 (Metrics.count h);
  Metrics.merge snap;
  Alcotest.(check int) "merge restores the lifetime count" n (Metrics.count h);
  Alcotest.(check (float 1e-6)) "merge restores the lifetime sum" sum_before
    (Metrics.hist_sum h);
  Alcotest.(check int) "window refilled to capacity" Metrics.window_capacity
    (Metrics.window_count h)

let test_recorder_reset_clears_histograms () =
  setup ();
  let h = Metrics.histogram "exp.epoch" in
  Metrics.observe h 5.0;
  Recorder.set_request (Some "r000009");
  Recorder.reset ();
  Alcotest.(check int) "reset starts a fresh epoch" 0 (Metrics.count h);
  Alcotest.(check bool) "request attribution cleared" true
    (Recorder.current_request () = None);
  let fams = parse_ok (Expose.render ()) in
  Alcotest.(check (option (float 1e-9)))
    "idle histogram is not exposed" None
    (Expose.hist_count fams "fpart_exp_epoch")

let test_request_stamp_on_records () =
  setup ();
  let sink, recorded = Fpart_obs.Sink.memory () in
  Fpart_obs.Sink.set sink;
  Recorder.with_request (Some "r000042") (fun () ->
      let sp = Recorder.span_begin "exp.work" in
      Recorder.event [ ("type", Json.Str "trace"); ("event", Json.Str "x") ];
      Recorder.span_end sp ~attrs:[]);
  Fpart_obs.Sink.set Fpart_obs.Sink.null;
  let stamped =
    List.filter
      (fun j -> Json.member "req" j = Some (Json.Str "r000042"))
      (recorded ())
  in
  Alcotest.(check int) "span and event both stamped" 2 (List.length stamped);
  Alcotest.(check bool) "stamp does not outlive with_request" true
    (Recorder.current_request () = None);
  Recorder.reset ()

(* ------------------------------------------------------------------ *)
(* strict parser rejections *)

let rejects name text =
  match Expose.parse text with
  | Ok _ -> Alcotest.failf "%s: parser accepted invalid exposition" name
  | Error _ -> ()

let test_parser_rejections () =
  rejects "sample before TYPE" "fpart_x_total 1\n";
  rejects "duplicate family"
    "# TYPE fpart_x_total counter\nfpart_x_total 1\n# TYPE fpart_x_total \
     counter\nfpart_x_total 2\n";
  rejects "negative counter" "# TYPE fpart_x_total counter\nfpart_x_total -1\n";
  rejects "bad metric name" "# TYPE fpart-x counter\nfpart-x 1\n";
  rejects "unsorted labels"
    "# TYPE fpart_h histogram\nfpart_h_bucket{le=\"1\",a=\"b\"} \
     1\nfpart_h_bucket{le=\"+Inf\"} 1\nfpart_h_sum 1\nfpart_h_count 1\n";
  rejects "non-cumulative buckets"
    "# TYPE fpart_h histogram\nfpart_h_bucket{le=\"1\"} \
     3\nfpart_h_bucket{le=\"2\"} 2\nfpart_h_bucket{le=\"+Inf\"} \
     3\nfpart_h_sum 1\nfpart_h_count 3\n";
  rejects "missing +Inf bucket"
    "# TYPE fpart_h histogram\nfpart_h_bucket{le=\"1\"} 1\nfpart_h_sum \
     1\nfpart_h_count 1\n";
  rejects "count disagrees with +Inf bucket"
    "# TYPE fpart_h histogram\nfpart_h_bucket{le=\"1\"} \
     1\nfpart_h_bucket{le=\"+Inf\"} 2\nfpart_h_sum 1\nfpart_h_count 3\n";
  rejects "garbage line" "# TYPE fpart_x counter\nfpart_x one\n"

let test_consumer_helpers () =
  let series = [ (1.0, 2.0); (5.0, 8.0); (infinity, 10.0) ] in
  Alcotest.(check (float 1e-9)) "p50 lands in the second bucket" 5.0
    (Expose.quantile_of_buckets ~p:0.5 series);
  Alcotest.(check (float 1e-9)) "p95 saturates to the last finite bound" 5.0
    (Expose.quantile_of_buckets ~p:0.95 series);
  Alcotest.(check bool) "empty series has no quantile" true
    (Float.is_nan (Expose.quantile_of_buckets ~p:0.5 []));
  let prev = [ (1.0, 1.0); (infinity, 4.0) ] in
  let cur = [ (1.0, 3.0); (infinity, 9.0) ] in
  Alcotest.(check bool) "delta is pointwise" true
    (Expose.delta_buckets ~prev ~cur = [ (1.0, 2.0); (infinity, 5.0) ])

(* ------------------------------------------------------------------ *)
(* property: any instrument activity renders a strict-parser-valid page *)

let activity_gen =
  QCheck.Gen.(
    list_size (int_range 1 60)
      (oneof
         [
           map (fun i -> `Count ("exp.prop.c" ^ string_of_int (i mod 4)))
             (int_range 0 100);
           map2
             (fun i v -> `Observe ("exp.prop.h" ^ string_of_int (i mod 3), v))
             (int_range 0 100)
             (float_range 0.0 50_000.0);
           map (fun v -> `Gauge v) (float_range (-5.0) 5.0);
         ]))

let prop_render_parses =
  QCheck.Test.make ~count:60 ~name:"every rendered page strict-parses"
    (QCheck.make activity_gen) (fun ops ->
      setup ();
      List.iter
        (function
          | `Count n -> Metrics.incr (Metrics.counter n)
          | `Observe (n, v) -> Metrics.observe (Metrics.histogram n) v
          | `Gauge v -> Expose.set_gauge "exp.prop.g" ~help:"prop" (fun () -> v))
        ops;
      let fams = parse_ok (Expose.render ()) in
      (* unique family names *)
      let names = List.map (fun f -> f.Expose.f_name) fams in
      let uniq = List.sort_uniq compare names in
      List.length names = List.length uniq
      && List.sort compare names = names
      && List.for_all
           (fun (f : Expose.family) ->
             f.f_type <> "histogram"
             ||
             (* _count = +Inf bucket = sum of the bucket deltas *)
             let series = Expose.buckets fams f.f_name in
             let count =
               Option.value ~default:nan (Expose.hist_count fams f.f_name)
             in
             let inf_total =
               match List.rev series with (_, t) :: _ -> t | [] -> nan
             in
             let deltas =
               List.fold_left
                 (fun (prev, acc) (_, c) -> (c, acc +. (c -. prev)))
                 (0.0, 0.0) series
               |> snd
             in
             count = inf_total && Float.abs (deltas -. count) < 1e-6)
           fams)

let () =
  Alcotest.run "expose"
    [
      ( "render",
        [
          Alcotest.test_case "counters and gauges" `Quick
            test_counter_and_gauge;
          Alcotest.test_case "histogram family shape" `Quick
            test_histogram_family;
          Alcotest.test_case "metric name mapping" `Quick
            test_engine_agnostic_names;
        ] );
      ( "window",
        [
          Alcotest.test_case "quantiles slide, aggregates accumulate" `Quick
            test_window_eviction;
          Alcotest.test_case "snapshot/merge survives eviction" `Quick
            test_snapshot_merge_with_eviction;
          Alcotest.test_case "Recorder.reset starts a fresh epoch" `Quick
            test_recorder_reset_clears_histograms;
          Alcotest.test_case "request id stamps records" `Quick
            test_request_stamp_on_records;
        ] );
      ( "parser",
        [
          Alcotest.test_case "rejections" `Quick test_parser_rejections;
          Alcotest.test_case "consumer helpers" `Quick test_consumer_helpers;
        ] );
      ("property", [ QCheck_alcotest.to_alcotest prop_render_parses ]);
    ]
