(* Flow: Dinic max-flow, the hypergraph flow network, FBB and FBB-MW. *)

module Hg = Hypergraph.Hgraph
module Maxflow = Flow.Maxflow
module Flownet = Flow.Flownet
module Fbb = Flow.Fbb
module Fbb_mw = Flow.Fbb_mw

(* --- Maxflow ------------------------------------------------------- *)

let test_maxflow_simple () =
  (* s -> a -> t with caps 3 and 2: flow 2 *)
  let g = Maxflow.create ~nodes:3 in
  ignore (Maxflow.add_edge g ~src:0 ~dst:1 ~cap:3);
  ignore (Maxflow.add_edge g ~src:1 ~dst:2 ~cap:2);
  Alcotest.(check int) "flow" 2 (Maxflow.max_flow g ~source:0 ~sink:2)

let test_maxflow_diamond () =
  (* classic diamond with a cross edge *)
  let g = Maxflow.create ~nodes:4 in
  ignore (Maxflow.add_edge g ~src:0 ~dst:1 ~cap:10);
  ignore (Maxflow.add_edge g ~src:0 ~dst:2 ~cap:10);
  ignore (Maxflow.add_edge g ~src:1 ~dst:3 ~cap:4);
  ignore (Maxflow.add_edge g ~src:2 ~dst:3 ~cap:9);
  ignore (Maxflow.add_edge g ~src:1 ~dst:2 ~cap:6);
  Alcotest.(check int) "flow" 13 (Maxflow.max_flow g ~source:0 ~sink:3)

let test_maxflow_disconnected () =
  let g = Maxflow.create ~nodes:4 in
  ignore (Maxflow.add_edge g ~src:0 ~dst:1 ~cap:5);
  ignore (Maxflow.add_edge g ~src:2 ~dst:3 ~cap:5);
  Alcotest.(check int) "no path" 0 (Maxflow.max_flow g ~source:0 ~sink:3)

let test_maxflow_incremental () =
  (* adding edges after a first max-flow continues from the old flow *)
  let g = Maxflow.create ~nodes:3 in
  ignore (Maxflow.add_edge g ~src:0 ~dst:1 ~cap:1);
  ignore (Maxflow.add_edge g ~src:1 ~dst:2 ~cap:5);
  Alcotest.(check int) "first" 1 (Maxflow.max_flow g ~source:0 ~sink:2);
  ignore (Maxflow.add_edge g ~src:0 ~dst:1 ~cap:2);
  Alcotest.(check int) "incremental addition" 2 (Maxflow.max_flow g ~source:0 ~sink:2);
  Alcotest.(check int) "total accumulates" 3 (Maxflow.total_flow g)

let test_source_side () =
  let g = Maxflow.create ~nodes:4 in
  ignore (Maxflow.add_edge g ~src:0 ~dst:1 ~cap:5);
  ignore (Maxflow.add_edge g ~src:1 ~dst:2 ~cap:1);
  ignore (Maxflow.add_edge g ~src:2 ~dst:3 ~cap:5);
  ignore (Maxflow.max_flow g ~source:0 ~sink:3);
  let side = Maxflow.source_side g ~source:0 in
  Alcotest.(check (array bool)) "min cut at the bottleneck"
    [| true; true; false; false |] side

let test_maxflow_errors () =
  let g = Maxflow.create ~nodes:2 in
  Alcotest.check_raises "bad node" (Invalid_argument "Maxflow.add_edge: node out of range")
    (fun () -> ignore (Maxflow.add_edge g ~src:0 ~dst:5 ~cap:1));
  Alcotest.check_raises "negative cap"
    (Invalid_argument "Maxflow.add_edge: negative capacity") (fun () ->
      ignore (Maxflow.add_edge g ~src:0 ~dst:1 ~cap:(-1)));
  Alcotest.check_raises "source=sink"
    (Invalid_argument "Maxflow.max_flow: source = sink") (fun () ->
      ignore (Maxflow.max_flow g ~source:0 ~sink:0))

let test_maxflow_zero_capacity () =
  (* a zero-capacity edge exists in the graph but can never carry flow;
     the level graph must still terminate *)
  let g = Maxflow.create ~nodes:3 in
  ignore (Maxflow.add_edge g ~src:0 ~dst:1 ~cap:0);
  ignore (Maxflow.add_edge g ~src:1 ~dst:2 ~cap:4);
  Alcotest.(check int) "no flow" 0 (Maxflow.max_flow g ~source:0 ~sink:2);
  Alcotest.(check (array bool)) "cut right after the source"
    [| true; false; false |]
    (Maxflow.source_side g ~source:0)

let test_maxflow_edgeless () =
  (* the BFS finds no sink level at all: flow 0, and a repeated call
     terminates from the same (empty) state *)
  let g = Maxflow.create ~nodes:2 in
  Alcotest.(check int) "no edges" 0 (Maxflow.max_flow g ~source:0 ~sink:1);
  Alcotest.(check int) "repeat call" 0 (Maxflow.max_flow g ~source:0 ~sink:1);
  Alcotest.(check int) "nothing accumulated" 0 (Maxflow.total_flow g)

(* --- Flownet ------------------------------------------------------- *)

(* path a - b - c (2-pin nets): min net cut between a and c is 1 *)
let path3 () =
  let b = Hg.Builder.create () in
  let a = Hg.Builder.add_cell b ~name:"a" ~size:1 in
  let bb = Hg.Builder.add_cell b ~name:"b" ~size:1 in
  let c = Hg.Builder.add_cell b ~name:"c" ~size:1 in
  ignore (Hg.Builder.add_net b ~name:"ab" [ a; bb ]);
  ignore (Hg.Builder.add_net b ~name:"bc" [ bb; c ]);
  (Hg.Builder.freeze b, a, bb, c)

let test_flownet_path () =
  let h, a, _, c = path3 () in
  let net = Flownet.build h ~keep:(fun _ -> true) in
  Flownet.attach_source net a;
  Flownet.attach_sink net c;
  Alcotest.(check int) "unit net cut" 1 (Flownet.run net);
  let side = Flownet.source_side net in
  Alcotest.(check bool) "a on source side" true side.(a);
  Alcotest.(check bool) "c on sink side" false side.(c)

let test_flownet_hyperedge_counts_once () =
  (* one 3-pin net between s-side and t-side costs exactly 1 *)
  let b = Hg.Builder.create () in
  let s = Hg.Builder.add_cell b ~name:"s" ~size:1 in
  let x = Hg.Builder.add_cell b ~name:"x" ~size:1 in
  let t = Hg.Builder.add_cell b ~name:"t" ~size:1 in
  ignore (Hg.Builder.add_net b ~name:"n" [ s; x; t ]);
  let h = Hg.Builder.freeze b in
  let net = Flownet.build h ~keep:(fun _ -> true) in
  Flownet.attach_source net s;
  Flownet.attach_sink net t;
  Alcotest.(check int) "hyperedge cut 1" 1 (Flownet.run net)

let test_flownet_restriction () =
  let h, a, bb, c = path3 () in
  (* exclude b: a and c become disconnected, cut 0 *)
  let net = Flownet.build h ~keep:(fun v -> v <> bb) in
  Flownet.attach_source net a;
  Flownet.attach_sink net c;
  Alcotest.(check int) "disconnected" 0 (Flownet.run net);
  Alcotest.check_raises "excluded node" (Invalid_argument "Flownet: node was not kept")
    (fun () -> Flownet.attach_source net bb)

let test_flownet_idempotent_attach () =
  let h, a, _, c = path3 () in
  let net = Flownet.build h ~keep:(fun _ -> true) in
  Flownet.attach_source net a;
  Flownet.attach_source net a;
  Flownet.attach_sink net c;
  Alcotest.(check bool) "marked" true (Flownet.in_source_set net a);
  Alcotest.(check int) "still unit cut" 1 (Flownet.run net)

let test_flownet_pad_pins () =
  (* a pad is an ordinary network node: kept, it bridges its nets;
     excluded, every net left with fewer than two kept pins is dropped *)
  let b = Hg.Builder.create () in
  let a = Hg.Builder.add_cell b ~name:"a" ~size:1 in
  let p = Hg.Builder.add_pad b ~name:"p" in
  let c = Hg.Builder.add_cell b ~name:"c" ~size:1 in
  ignore (Hg.Builder.add_net b ~name:"ap" [ a; p ]);
  ignore (Hg.Builder.add_net b ~name:"pc" [ p; c ]);
  let h = Hg.Builder.freeze b in
  let net = Flownet.build h ~keep:(fun _ -> true) in
  Flownet.attach_source net a;
  Flownet.attach_sink net c;
  Alcotest.(check int) "kept pad bridges the path" 1 (Flownet.run net);
  let net = Flownet.build h ~keep:(fun v -> not (Hg.is_pad h v)) in
  Flownet.attach_source net a;
  Flownet.attach_sink net c;
  Alcotest.(check int) "excluded pad disconnects" 0 (Flownet.run net);
  Alcotest.check_raises "excluded pad cannot be attached"
    (Invalid_argument "Flownet: node was not kept") (fun () ->
      Flownet.attach_source net p)

(* --- FBB ----------------------------------------------------------- *)

let gen_circuit cells seed =
  Netlist.Generator.generate
    (Netlist.Generator.default_spec ~name:"flow" ~cells ~pads:4 ~seed)

let test_fbb_window () =
  let h = gen_circuit 120 3 in
  let rng = Prng.Splitmix.create 1 in
  let seed_s = 0 and seed_t = 100 in
  match
    Fbb.bipartition h ~keep:(fun _ -> true) ~seed_s ~seed_t ~lo:40 ~hi:70 ~rng
  with
  | None -> Alcotest.fail "FBB failed to find a window cut"
  | Some r ->
    let w = ref 0 in
    Array.iteri (fun v s -> if s then w := !w + Hg.size h v) r.Fbb.side;
    Alcotest.(check bool) "weight in window" true (!w >= 40 && !w <= 70);
    Alcotest.(check bool) "seed_s inside" true r.Fbb.side.(seed_s);
    Alcotest.(check bool) "seed_t outside" false r.Fbb.side.(seed_t);
    (* the reported cut matches the actual boundary nets *)
    let member v = r.Fbb.side.(v) in
    let cut =
      Hg.fold_nets
        (fun acc e ->
          let pins = Hg.pins h e in
          if Array.exists member pins && Array.exists (fun v -> not (member v)) pins
          then acc + 1
          else acc)
        0 h
    in
    Alcotest.(check int) "cut consistent" cut r.Fbb.cut

let test_fbb_errors () =
  let h = gen_circuit 20 5 in
  let rng = Prng.Splitmix.create 1 in
  Alcotest.check_raises "seeds coincide"
    (Invalid_argument "Fbb.bipartition: seeds coincide") (fun () ->
      ignore (Fbb.bipartition h ~keep:(fun _ -> true) ~seed_s:1 ~seed_t:1 ~lo:1 ~hi:5 ~rng));
  Alcotest.check_raises "lo > hi" (Invalid_argument "Fbb.bipartition: lo > hi")
    (fun () ->
      ignore (Fbb.bipartition h ~keep:(fun _ -> true) ~seed_s:0 ~seed_t:1 ~lo:9 ~hi:3 ~rng))

let test_fbb_unattainable () =
  (* window above the total weight can never be met *)
  let h = gen_circuit 20 7 in
  let rng = Prng.Splitmix.create 2 in
  Alcotest.(check bool) "None on impossible window" true
    (Fbb.bipartition h ~keep:(fun _ -> true) ~seed_s:0 ~seed_t:5 ~lo:1000 ~hi:2000 ~rng
     = None)

(* --- FBB-MW -------------------------------------------------------- *)

let test_fbbmw_end_to_end () =
  let h = gen_circuit 200 9 in
  let cfg = { Fbb_mw.default_config with delta = 0.9 } in
  let r = Fbb_mw.partition h Device.xc3020 cfg in
  Alcotest.(check bool) "feasible" true r.Fbb_mw.feasible;
  let s_max = Device.s_max Device.xc3020 ~delta:0.9 in
  let m =
    Device.lower_bound Device.xc3020 ~delta:0.9 ~total_size:(Hg.total_size h)
      ~total_pads:(Hg.num_pads h)
  in
  Alcotest.(check bool) "k >= M" true (r.Fbb_mw.k >= m);
  (* verify the blocks truly meet constraints *)
  let st = Partition.State.create h ~k:r.Fbb_mw.k ~assign:(fun v -> r.Fbb_mw.assignment.(v)) in
  for b = 0 to r.Fbb_mw.k - 1 do
    Alcotest.(check bool) "size ok" true (Partition.State.size_of st b <= s_max);
    Alcotest.(check bool) "pins ok" true
      (Partition.State.pins_of st b <= Device.xc3020.Device.t_max)
  done

let test_fbbmw_every_node_assigned () =
  let h = gen_circuit 90 13 in
  let r = Fbb_mw.partition h Device.xc3042 { Fbb_mw.default_config with delta = 0.9 } in
  Array.iteri
    (fun v b ->
      if b < 0 || b >= r.Fbb_mw.k then Alcotest.failf "node %d unassigned (%d)" v b)
    r.Fbb_mw.assignment

let test_fbbmw_single_block () =
  (* a circuit that already fits one device *)
  let h = gen_circuit 30 11 in
  let r = Fbb_mw.partition h Device.xc3090 { Fbb_mw.default_config with delta = 0.9 } in
  Alcotest.(check int) "one block" 1 r.Fbb_mw.k;
  Alcotest.(check bool) "feasible" true r.Fbb_mw.feasible

let test_fbbmw_greedy_fallback () =
  (* pin_retries = 0 with a near-degenerate window forces the greedy
     BFS carve to back up the flow carver; the result must still assign
     every node into a real block *)
  let h = gen_circuit 80 17 in
  let cfg =
    { Fbb_mw.default_config with delta = 0.9; window = 0.99; pin_retries = 0 }
  in
  let r = Fbb_mw.partition h Device.xc3020 cfg in
  Alcotest.(check bool) "k >= 1" true (r.Fbb_mw.k >= 1);
  Array.iteri
    (fun v b ->
      if b < 0 || b >= r.Fbb_mw.k then Alcotest.failf "node %d unassigned (%d)" v b)
    r.Fbb_mw.assignment;
  (* the reported cut matches a from-scratch recount *)
  let cut =
    Hg.fold_nets
      (fun acc e ->
        let pins = Hg.pins h e in
        let b0 = r.Fbb_mw.assignment.(pins.(0)) in
        if Array.exists (fun v -> r.Fbb_mw.assignment.(v) <> b0) pins then acc + 1
        else acc)
      0 h
  in
  Alcotest.(check int) "cut consistent" cut r.Fbb_mw.cut

let test_fbbmw_no_refinement () =
  (* refine_passes = 0 skips the FM cleanup entirely *)
  let h = gen_circuit 120 19 in
  let cfg = { Fbb_mw.default_config with delta = 0.9; refine_passes = 0 } in
  let r = Fbb_mw.partition h Device.xc3042 cfg in
  let s_max = Device.s_max Device.xc3042 ~delta:0.9 in
  let st =
    Partition.State.create h ~k:r.Fbb_mw.k ~assign:(fun v -> r.Fbb_mw.assignment.(v))
  in
  if r.Fbb_mw.feasible then
    for b = 0 to r.Fbb_mw.k - 1 do
      Alcotest.(check bool) "size ok" true (Partition.State.size_of st b <= s_max)
    done

let test_fbbmw_deterministic () =
  let h = gen_circuit 100 23 in
  let cfg = { Fbb_mw.default_config with delta = 0.9 } in
  let r1 = Fbb_mw.partition h Device.xc3020 cfg in
  let r2 = Fbb_mw.partition h Device.xc3020 cfg in
  Alcotest.(check int) "same k" r1.Fbb_mw.k r2.Fbb_mw.k;
  Alcotest.(check (array int)) "same assignment" r1.Fbb_mw.assignment
    r2.Fbb_mw.assignment

let prop_maxflow_min_cut =
  (* flow value equals capacity across the returned source side *)
  QCheck.Test.make ~count:60 ~name:"max-flow equals min-cut capacity"
    QCheck.(pair (int_range 4 12) (int_range 0 10_000))
    (fun (n, seed) ->
      let rng = Prng.Splitmix.create seed in
      let g = Maxflow.create ~nodes:n in
      let edges = ref [] in
      for _ = 1 to 3 * n do
        let a = Prng.Splitmix.int rng n and b = Prng.Splitmix.int rng n in
        if a <> b then begin
          let cap = 1 + Prng.Splitmix.int rng 9 in
          let _ = Maxflow.add_edge g ~src:a ~dst:b ~cap in
          edges := (a, b, cap) :: !edges
        end
      done;
      let flow = Maxflow.max_flow g ~source:0 ~sink:(n - 1) in
      let side = Maxflow.source_side g ~source:0 in
      if side.(n - 1) then flow = 0 (* impossible: sink unreachable only if flow capped *)
      else begin
        let cut_cap =
          List.fold_left
            (fun acc (a, b, cap) -> if side.(a) && not side.(b) then acc + cap else acc)
            0 !edges
        in
        flow = cut_cap
      end)

let () =
  Alcotest.run "flow"
    [
      ( "maxflow",
        [
          Alcotest.test_case "simple" `Quick test_maxflow_simple;
          Alcotest.test_case "diamond" `Quick test_maxflow_diamond;
          Alcotest.test_case "disconnected" `Quick test_maxflow_disconnected;
          Alcotest.test_case "incremental" `Quick test_maxflow_incremental;
          Alcotest.test_case "source side" `Quick test_source_side;
          Alcotest.test_case "errors" `Quick test_maxflow_errors;
          Alcotest.test_case "zero capacity" `Quick test_maxflow_zero_capacity;
          Alcotest.test_case "edgeless" `Quick test_maxflow_edgeless;
        ] );
      ( "flownet",
        [
          Alcotest.test_case "path" `Quick test_flownet_path;
          Alcotest.test_case "hyperedge once" `Quick test_flownet_hyperedge_counts_once;
          Alcotest.test_case "restriction" `Quick test_flownet_restriction;
          Alcotest.test_case "idempotent attach" `Quick test_flownet_idempotent_attach;
          Alcotest.test_case "pad pins" `Quick test_flownet_pad_pins;
        ] );
      ( "fbb",
        [
          Alcotest.test_case "window" `Quick test_fbb_window;
          Alcotest.test_case "errors" `Quick test_fbb_errors;
          Alcotest.test_case "unattainable" `Quick test_fbb_unattainable;
        ] );
      ( "fbb-mw",
        [
          Alcotest.test_case "end to end" `Quick test_fbbmw_end_to_end;
          Alcotest.test_case "all assigned" `Quick test_fbbmw_every_node_assigned;
          Alcotest.test_case "single block" `Quick test_fbbmw_single_block;
          Alcotest.test_case "greedy fallback" `Quick test_fbbmw_greedy_fallback;
          Alcotest.test_case "no refinement" `Quick test_fbbmw_no_refinement;
          Alcotest.test_case "deterministic" `Quick test_fbbmw_deterministic;
        ] );
      ("property", List.map QCheck_alcotest.to_alcotest [ prop_maxflow_min_cut ]);
    ]
