(* Flow-based boundary refinement (Flow.Refine): max-flow vs a
   brute-force min-cut enumeration, corridor window safety, the
   apply-or-restore invariant, the zero-headroom edge case of the
   feasible move windows, and pool determinism of every --refiner
   backend.

   FPART_TEST_JOBS (default 2) sets the widest pool exercised — CI runs
   the suite a second time with FPART_TEST_JOBS=4. *)

module Hg = Hypergraph.Hgraph
module State = Partition.State
module Cost = Partition.Cost
module Maxflow = Flow.Maxflow
module Refine = Flow.Refine
module Config = Fpart.Config
module Improve = Fpart.Improve
module Driver = Fpart.Driver
module Oracle = Fpart_check.Oracle
module Tg = Fpart_testgen

let test_jobs =
  match Sys.getenv_opt "FPART_TEST_JOBS" with
  | Some s -> ( match int_of_string_opt s with Some n when n >= 1 -> n | _ -> 2)
  | None -> 2

(* ------------------------------------------------------------------ *)
(* Shared builders                                                     *)
(* ------------------------------------------------------------------ *)

let make_eval ctx ~k st =
  Cost.evaluate Config.default.Config.cost ctx st ~remainder:None ~step_k:k

let scene_setup sc ~s_max ~t_max =
  let hg = Tg.scene_graph sc in
  let init = Tg.scene_init sc in
  let k = sc.Tg.sc_k in
  let st = State.create hg ~k ~assign:(fun v -> init.(v)) in
  let device = Tg.tiny_device ~s_max ~t_max in
  let ctx = Cost.context_of device ~delta:1.0 hg in
  (hg, st, ctx, k)

(* ------------------------------------------------------------------ *)
(* (a) Max-flow against brute-force min-cut enumeration               *)
(* ------------------------------------------------------------------ *)

(* Minimum s-t cut by enumerating every source-side subset that
   contains node 0 and excludes node [n - 1] (≤ 2^10 subsets). *)
let brute_min_cut fn =
  let n = fn.Tg.fn_nodes in
  let best = ref max_int in
  for mask = 0 to (1 lsl (n - 2)) - 1 do
    let in_s v = v = 0 || (v < n - 1 && mask land (1 lsl (v - 1)) <> 0) in
    let cut =
      List.fold_left
        (fun acc (s, d, c) -> if in_s s && not (in_s d) then acc + c else acc)
        0 fn.Tg.fn_edges
    in
    if cut < !best then best := cut
  done;
  !best

let prop_maxflow_bruteforce =
  QCheck.Test.make ~count:150 ~name:"max-flow equals brute-force min-cut"
    (Tg.arb_flownet ())
    (fun fn ->
      let g = Maxflow.create ~nodes:fn.Tg.fn_nodes in
      List.iter
        (fun (s, d, c) -> ignore (Maxflow.add_edge g ~src:s ~dst:d ~cap:c))
        fn.Tg.fn_edges;
      Maxflow.max_flow g ~source:0 ~sink:(fn.Tg.fn_nodes - 1) = brute_min_cut fn)

(* ------------------------------------------------------------------ *)
(* (b) Corridor extraction respects the feasible windows              *)
(* ------------------------------------------------------------------ *)

(* After one corridor min-cut between blocks 0 and 1: no block drifts
   beyond its window (or further outside than it started), pads never
   move, and only the refined pair exchanges nodes. *)
let prop_corridor_window_safe =
  QCheck.Test.make ~count:40 ~name:"corridor refinement stays inside the windows"
    QCheck.(pair (Tg.arb_scene ~max_cells:60 ~max_k:4 ()) (Tg.arb_device ()))
    (fun (sc, (s_max, t_max)) ->
      let hg, st, ctx, k = scene_setup sc ~s_max ~t_max in
      let lower = Array.make k 0 and upper = Array.make k s_max in
      let eval = make_eval ctx ~k in
      let size_before = Array.init k (State.size_of st) in
      let assign_before = State.assignment st in
      ignore (Refine.refine_pair Refine.default_config st ~a:0 ~b:1 ~lower ~upper ~eval);
      let windows_ok = ref true in
      for b = 0 to k - 1 do
        let sz = State.size_of st b in
        if sz > max size_before.(b) upper.(b) then windows_ok := false;
        if sz < min size_before.(b) lower.(b) then windows_ok := false
      done;
      let nodes_ok = ref true in
      Hg.iter_nodes
        (fun v ->
          let b0 = assign_before.(v) and b1 = State.block_of st v in
          if b1 <> b0 then begin
            if Hg.is_pad hg v then nodes_ok := false;
            if not ((b0 = 0 || b0 = 1) && (b1 = 0 || b1 = 1)) then
              nodes_ok := false
          end)
        hg;
      !windows_ok && !nodes_ok)

(* ------------------------------------------------------------------ *)
(* (c) Apply-or-restore: refinement never worsens the value           *)
(* ------------------------------------------------------------------ *)

let prop_refine_never_worsens =
  QCheck.Test.make ~count:30 ~name:"flow refinement never worsens the value"
    QCheck.(pair (Tg.arb_scene ~max_cells:80 ~max_k:4 ()) (Tg.arb_device ()))
    (fun (sc, (s_max, t_max)) ->
      let hg, st, ctx, k = scene_setup sc ~s_max ~t_max in
      let lower = Array.make k 0 and upper = Array.make k s_max in
      let eval = make_eval ctx ~k in
      let v0 = eval st and cut0 = State.cut_size st in
      ignore
        (Refine.refine_active Refine.default_config st
           ~active:(Array.init k Fun.id) ~lower ~upper ~eval);
      let v1 = eval st and cut1 = State.cut_size st in
      (* the incremental bookkeeping survives the snapshot restores *)
      let oracle = Oracle.recompute hg ~k ~assign:(State.block_of st) in
      Cost.compare_value v1 v0 <= 0 && cut1 <= cut0 && oracle.Oracle.cut = cut1)

(* ------------------------------------------------------------------ *)
(* Zero-headroom edge case (feasible windows §3.5)                    *)
(* ------------------------------------------------------------------ *)

(* Two 4-cliques on a device with S_MAX = 4: both blocks sit exactly at
   their upper bound.  [Improve.windows] admits a block AT the bound,
   but the corridor cap arithmetic must grant zero headroom, so the
   pair is skipped untouched. *)
let clique_state () =
  let hg, _ = Tg.two_cliques () in
  let st = State.create hg ~k:2 ~assign:(fun v -> if v < 4 then 0 else 1) in
  let ctx = Cost.context_of (Tg.tiny_device ~s_max:4 ~t_max:64) ~delta:1.0 hg in
  (hg, st, ctx)

let test_zero_headroom_skips () =
  let _, st, ctx = clique_state () in
  let eval = make_eval ctx ~k:2 in
  let before = State.assignment st in
  let outcome =
    Refine.refine_pair Refine.default_config st ~a:0 ~b:1
      ~lower:[| 0; 0 |] ~upper:[| 4; 4 |] ~eval
  in
  Alcotest.(check bool) "skipped" true (outcome = Refine.Skipped);
  Alcotest.(check (array int)) "assignment untouched" before (State.assignment st)

let test_zero_headroom_one_sided () =
  (* only block 1 is at its bound: nothing may move into it *)
  let _, st, ctx = clique_state () in
  let eval = make_eval ctx ~k:2 in
  ignore
    (Refine.refine_pair Refine.default_config st ~a:0 ~b:1
       ~lower:[| 0; 0 |] ~upper:[| 8; 4 |] ~eval);
  Alcotest.(check bool) "block 1 never grows past its bound" true
    (State.size_of st 1 <= 4)

let test_windows_at_s_max () =
  (* pin the window shape the flow caps are derived from: with size
     violations disallowed the non-remainder upper bound IS S_MAX, so a
     block at exactly S_MAX is admitted by the window with zero
     headroom; the remainder stays unbounded *)
  let hg, st, ctx = clique_state () in
  ignore hg;
  let imp =
    {
      Improve.cfg = Config.default;
      params = Config.default.Config.cost;
      ctx;
      trace = Fpart.Trace.create ();
    }
  in
  let strict_lower, strict_upper =
    Improve.windows imp st ~remainder:1 ~allow_violation:false ~two_block:true
  in
  Alcotest.(check int) "non-remainder upper = S_MAX" 4 strict_upper.(0);
  Alcotest.(check int) "remainder lower = 0" 0 strict_lower.(1);
  Alcotest.(check int) "remainder unbounded" max_int strict_upper.(1);
  let _, loose_upper =
    Improve.windows imp st ~remainder:1 ~allow_violation:true ~two_block:true
  in
  Alcotest.(check bool) "violating window only ever widens" true
    (loose_upper.(0) >= strict_upper.(0))

(* ------------------------------------------------------------------ *)
(* Refine-step ordering: hybrid never loses to pure Sanchis           *)
(* ------------------------------------------------------------------ *)

let test_hybrid_matches_or_beats_sanchis () =
  let hg = Tg.circuit ~name:"refine" ~cells:180 ~pads:20 7 in
  let device = Tg.tiny_device ~s_max:48 ~t_max:56 in
  let ctx = Cost.context_of device ~delta:1.0 hg in
  let base = Driver.run ~config:Config.default hg device in
  let cut_input = State.cut_size (Driver.final_state base hg) in
  let refined refiner =
    let st = Driver.final_state base hg in
    Driver.refine { Config.default with Config.refiner } ctx st;
    State.cut_size st
  in
  let sanchis = refined Config.Sanchis_refiner in
  let flow = refined Config.Flow_refiner in
  let hybrid = refined Config.Hybrid_refiner in
  Alcotest.(check bool) "hybrid <= sanchis" true (hybrid <= sanchis);
  Alcotest.(check bool) "flow never worsens its input" true (flow <= cut_input)

(* ------------------------------------------------------------------ *)
(* Pool determinism: every refiner is jobs-invariant                  *)
(* ------------------------------------------------------------------ *)

let test_pool_identity () =
  let hg = Tg.circuit ~name:"pool" ~cells:160 ~pads:24 1 in
  let device = Tg.tiny_device ~s_max:40 ~t_max:48 in
  List.iter
    (fun refiner ->
      let name = Config.refiner_name refiner in
      let config = { Config.default with Config.refiner } in
      let r1 = Driver.run_best ~config ~jobs:1 ~runs:4 hg device in
      let rn = Driver.run_best ~config ~jobs:test_jobs ~runs:4 hg device in
      Alcotest.(check int) (name ^ ": k") r1.Driver.k rn.Driver.k;
      Alcotest.(check int) (name ^ ": cut") r1.Driver.cut rn.Driver.cut;
      Alcotest.(check (array int))
        (name ^ ": assignment")
        r1.Driver.assignment rn.Driver.assignment)
    [ Config.Sanchis_refiner; Config.Flow_refiner; Config.Hybrid_refiner ]

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "flow-refine"
    [
      ( "zero-headroom",
        [
          Alcotest.test_case "pair skipped" `Quick test_zero_headroom_skips;
          Alcotest.test_case "one-sided" `Quick test_zero_headroom_one_sided;
          Alcotest.test_case "window shape" `Quick test_windows_at_s_max;
        ] );
      ( "ordering",
        [
          Alcotest.test_case "hybrid vs sanchis" `Quick
            test_hybrid_matches_or_beats_sanchis;
          Alcotest.test_case "pool identity" `Quick test_pool_identity;
        ] );
      ( "property",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_maxflow_bruteforce;
            prop_corridor_window_safe;
            prop_refine_never_worsens;
          ] );
    ]
