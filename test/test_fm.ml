(* Fm: classical Fiduccia-Mattheyses bipartition refinement. *)

module Hg = Hypergraph.Hgraph
module State = Partition.State

let wide_limits = { Fm.lo0 = 0; hi0 = max_int / 2; lo1 = 0; hi1 = max_int / 2 }

let circuit = Fpart_testgen.circuit ~name:"f"

let test_finds_optimal_cut () =
  let h, c = Fpart_testgen.two_cliques () in
  (* start from a bad split: even/odd *)
  let st = State.create h ~k:2 ~assign:(fun v -> v land 1) in
  let limits = Fm.limits_of_tolerance ~total:8 ~tolerance:0.1 in
  let r = Fm.refine st ~block0:0 ~block1:1 ~limits ~max_passes:10 in
  Alcotest.(check int) "optimal cut" 1 r.Fm.final_cut;
  Alcotest.(check int) "state cut agrees" 1 (State.cut_size st);
  (* the two cliques ended up separated *)
  let b0 = State.block_of st c.(0) in
  for i = 1 to 3 do
    Alcotest.(check int) "clique 1 together" b0 (State.block_of st c.(i))
  done;
  let b4 = State.block_of st c.(4) in
  for i = 5 to 7 do
    Alcotest.(check int) "clique 2 together" b4 (State.block_of st c.(i))
  done;
  Alcotest.(check bool) "separated" true (b0 <> b4)

let test_never_worse () =
  let h = circuit ~cells:80 ~pads:8 4 in
  let st = State.create h ~k:2 ~assign:(fun v -> v land 1) in
  let before = State.cut_size st in
  let r = Fm.refine st ~block0:0 ~block1:1 ~limits:wide_limits ~max_passes:6 in
  Alcotest.(check bool) "cut not worse" true (r.Fm.final_cut <= before);
  Alcotest.(check int) "initial recorded" before r.Fm.initial_cut;
  match State.check st with Ok () -> () | Error e -> Alcotest.fail e

let test_respects_limits () =
  let h = circuit ~cells:60 ~pads:6 9 in
  let st = State.create h ~k:2 ~assign:(fun v -> if v < 30 then 0 else 1) in
  let limits = { Fm.lo0 = 25; hi0 = 35; lo1 = 25; hi1 = 35 } in
  ignore (Fm.refine st ~block0:0 ~block1:1 ~limits ~max_passes:8);
  let s0 = State.size_of st 0 and s1 = State.size_of st 1 in
  Alcotest.(check bool) "block0 window" true (s0 >= 25 && s0 <= 35);
  Alcotest.(check bool) "block1 window" true (s1 >= 25 && s1 <= 35)

let test_untouched_blocks () =
  let h = circuit ~cells:40 ~pads:4 2 in
  let st = State.create h ~k:3 ~assign:(fun v -> v mod 3) in
  let frozen = State.nodes_of_block st 2 in
  ignore (Fm.refine st ~block0:0 ~block1:1 ~limits:wide_limits ~max_passes:4);
  Alcotest.(check (list int)) "block 2 untouched" frozen (State.nodes_of_block st 2)

let test_errors () =
  let h = circuit ~cells:10 ~pads:2 1 in
  let st = State.create h ~k:2 ~assign:(fun _ -> 0) in
  Alcotest.check_raises "same block" (Invalid_argument "Fm.refine: blocks coincide")
    (fun () -> ignore (Fm.refine st ~block0:1 ~block1:1 ~limits:wide_limits ~max_passes:1));
  Alcotest.check_raises "out of range"
    (Invalid_argument "Fm.refine: block out of range") (fun () ->
      ignore (Fm.refine st ~block0:0 ~block1:5 ~limits:wide_limits ~max_passes:1))

let test_limits_of_tolerance () =
  let l = Fm.limits_of_tolerance ~total:100 ~tolerance:0.1 in
  Alcotest.(check int) "lo0" 40 l.Fm.lo0;
  Alcotest.(check int) "hi0" 60 l.Fm.hi0;
  (* a balanced split is legal under these limits *)
  Alcotest.(check bool) "balanced legal" true (l.Fm.lo0 <= 50 && 50 <= l.Fm.hi0)

let test_pads_move () =
  (* a pad on the wrong side of an otherwise internal net gets pulled over *)
  let b = Hg.Builder.create () in
  let x = Hg.Builder.add_cell b ~name:"x" ~size:1 in
  let y = Hg.Builder.add_cell b ~name:"y" ~size:1 in
  let z = Hg.Builder.add_cell b ~name:"z" ~size:1 in
  let p = Hg.Builder.add_pad b ~name:"p" in
  ignore (Hg.Builder.add_net b ~name:"n1" [ x; y ]);
  ignore (Hg.Builder.add_net b ~name:"n2" [ y; z ]);
  ignore (Hg.Builder.add_net b ~name:"np" [ z; p ]);
  let h = Hg.Builder.freeze b in
  (* p alone in block 0; cells in block 1: np is cut *)
  let st = State.create h ~k:2 ~assign:(fun v -> if v = p then 0 else 1) in
  Alcotest.(check int) "initially cut" 1 (State.cut_size st);
  let r = Fm.refine st ~block0:0 ~block1:1 ~limits:wide_limits ~max_passes:4 in
  Alcotest.(check int) "uncut after refine" 0 r.Fm.final_cut

let prop_never_worse =
  QCheck.Test.make ~count:40 ~name:"refine never increases the cut"
    QCheck.(triple (int_range 10 120) (int_range 1 10_000) (int_range 2 10))
    (fun (cells, seed, passes) ->
      let h = circuit ~cells ~pads:4 seed in
      let st = State.create h ~k:2 ~assign:(fun v -> (v * 7) land 1) in
      let before = State.cut_size st in
      let r = Fm.refine st ~block0:0 ~block1:1 ~limits:wide_limits ~max_passes:passes in
      r.Fm.final_cut <= before && State.check st = Ok ())

let prop_respects_random_limits =
  QCheck.Test.make ~count:30 ~name:"size windows hold whenever they held initially"
    QCheck.(pair (int_range 20 80) (int_range 1 10_000))
    (fun (cells, seed) ->
      let h = circuit ~cells ~pads:2 seed in
      let half = cells / 2 in
      let st = State.create h ~k:2 ~assign:(fun v -> if v < half then 0 else 1) in
      let slack = max 2 (cells / 5) in
      let limits =
        {
          Fm.lo0 = State.size_of st 0 - slack;
          hi0 = State.size_of st 0 + slack;
          lo1 = State.size_of st 1 - slack;
          hi1 = State.size_of st 1 + slack;
        }
      in
      ignore (Fm.refine st ~block0:0 ~block1:1 ~limits ~max_passes:5);
      State.size_of st 0 >= limits.Fm.lo0
      && State.size_of st 0 <= limits.Fm.hi0
      && State.size_of st 1 >= limits.Fm.lo1
      && State.size_of st 1 <= limits.Fm.hi1)

let () =
  Alcotest.run "fm"
    [
      ( "unit",
        [
          Alcotest.test_case "optimal on two clusters" `Quick test_finds_optimal_cut;
          Alcotest.test_case "never worse" `Quick test_never_worse;
          Alcotest.test_case "respects limits" `Quick test_respects_limits;
          Alcotest.test_case "other blocks untouched" `Quick test_untouched_blocks;
          Alcotest.test_case "errors" `Quick test_errors;
          Alcotest.test_case "limits_of_tolerance" `Quick test_limits_of_tolerance;
          Alcotest.test_case "pads move" `Quick test_pads_move;
        ] );
      ( "property",
        List.map QCheck_alcotest.to_alcotest
          [ prop_never_worse; prop_respects_random_limits ] );
    ]
