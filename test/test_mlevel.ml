(* Multilevel machinery: Induce extraction, the CSR hypergraph and its
   exact contraction, heavy-edge matching, and the V-cycle engine. *)

module Hg = Hypergraph.Hgraph
module Induce = Hypergraph.Induce
module Csr = Hypergraph.Csr
module Matching = Cluster.Matching
module Engine = Mlevel.Engine
module State = Partition.State
module Cost = Partition.Cost
module Oracle = Fpart_check.Oracle
module Selfcheck = Fpart_check.Selfcheck

let circuit ?(cells = 200) ?(pads = 24) seed =
  Netlist.Generator.generate
    (Netlist.Generator.default_spec ~name:"ml" ~cells ~pads ~seed)

(* --- Induce -------------------------------------------------------- *)

let test_induce_identity () =
  let h = circuit 1 in
  let ind = Induce.induce h ~keep:(fun _ -> true) in
  Alcotest.(check int) "same nodes" (Hg.num_nodes h) (Hg.num_nodes ind.Induce.sub);
  Alcotest.(check int) "same nets" (Hg.num_nets h) (Hg.num_nets ind.Induce.sub);
  Alcotest.(check int) "same size" (Hg.total_size h) (Hg.total_size ind.Induce.sub)

let test_induce_subset () =
  let h = circuit 2 in
  let keep v = v mod 2 = 0 in
  let ind = Induce.induce h ~keep in
  (* mappings are mutually inverse on the kept set *)
  Array.iteri
    (fun sub_v orig_v ->
      Alcotest.(check int) "roundtrip" sub_v ind.Induce.to_sub.(orig_v);
      Alcotest.(check bool) "kept" true (keep orig_v);
      (* attributes preserved *)
      Alcotest.(check int) "size" (Hg.size h orig_v) (Hg.size ind.Induce.sub sub_v);
      Alcotest.(check bool) "kind" (Hg.is_pad h orig_v) (Hg.is_pad ind.Induce.sub sub_v))
    ind.Induce.to_orig;
  Hg.iter_nodes
    (fun v -> if not (keep v) then Alcotest.(check int) "dropped" (-1) ind.Induce.to_sub.(v))
    h;
  (* induced nets have >= 2 pins and validate *)
  Alcotest.(check bool) "validates" true (Hg.validate ind.Induce.sub = Ok ());
  Hg.iter_nets
    (fun e ->
      if Hg.net_degree ind.Induce.sub e < 2 then Alcotest.fail "degenerate net kept")
    ind.Induce.sub

let test_induce_net_restriction () =
  (* a 3-pin net with one pin dropped becomes a 2-pin net *)
  let b = Hg.Builder.create () in
  let x = Hg.Builder.add_cell b ~name:"x" ~size:1 in
  let y = Hg.Builder.add_cell b ~name:"y" ~size:1 in
  let z = Hg.Builder.add_cell b ~name:"z" ~size:1 in
  ignore (Hg.Builder.add_net b ~name:"n" [ x; y; z ]);
  let h = Hg.Builder.freeze b in
  let ind = Induce.induce h ~keep:(fun v -> v <> z) in
  Alcotest.(check int) "net kept" 1 (Hg.num_nets ind.Induce.sub);
  Alcotest.(check int) "restricted degree" 2 (Hg.net_degree ind.Induce.sub 0);
  (* with two pins dropped the net disappears *)
  let ind2 = Induce.induce h ~keep:(fun v -> v = x) in
  Alcotest.(check int) "net dropped" 0 (Hg.num_nets ind2.Induce.sub)

(* --- Csr ----------------------------------------------------------- *)

let test_csr_roundtrip () =
  let h = circuit 11 in
  let c = Csr.of_hgraph h in
  Alcotest.(check bool) "validates" true (Csr.validate c = Ok ());
  Alcotest.(check int) "nodes" (Hg.num_nodes h) (Csr.num_nodes c);
  Alcotest.(check int) "nets" (Hg.num_nets h) (Csr.num_nets c);
  let hg_pins =
    let n = ref 0 in
    Hg.iter_nets (fun e -> n := !n + Hg.net_degree h e) h;
    !n
  in
  Alcotest.(check int) "pins" hg_pins (Csr.num_pins c);
  Alcotest.(check int) "pads" (Hg.num_pads h) (Csr.num_pads c);
  Alcotest.(check int) "size" (Hg.total_size h) (Csr.total_size c);
  let h2 = Csr.to_hgraph c in
  Alcotest.(check bool) "hg validates" true (Hg.validate h2 = Ok ());
  Hg.iter_nodes
    (fun v ->
      Alcotest.(check int) "node size" (Hg.size h v) (Hg.size h2 v);
      Alcotest.(check int) "node flops" (Hg.flops h v) (Hg.flops h2 v);
      Alcotest.(check bool) "node kind" (Hg.is_pad h v) (Hg.is_pad h2 v))
    h;
  Hg.iter_nets
    (fun e ->
      let sorted a = Array.sort compare a; a in
      Alcotest.(check (array int))
        "net pins"
        (sorted (Array.copy (Hg.pins h e)))
        (sorted (Array.copy (Hg.pins h2 e))))
    h

(* a(2) b(1) c(3) + pad p; nets n1=abc n2=ab n3=pc n4=ac *)
let tiny () =
  let b = Hg.Builder.create () in
  let a = Hg.Builder.add_cell b ~name:"a" ~size:2 in
  let bb = Hg.Builder.add_cell b ~name:"b" ~size:1 ~flops:1 in
  let c = Hg.Builder.add_cell b ~name:"c" ~size:3 in
  let p = Hg.Builder.add_pad b ~name:"p" in
  ignore (Hg.Builder.add_net b ~name:"n1" [ a; bb; c ]);
  ignore (Hg.Builder.add_net b ~name:"n2" [ a; bb ]);
  ignore (Hg.Builder.add_net b ~name:"n3" [ p; c ]);
  ignore (Hg.Builder.add_net b ~name:"n4" [ a; c ]);
  (Csr.of_hgraph (Hg.Builder.freeze b), (a, bb, c, p))

let test_contract_tiny () =
  let csr, (a, bb, c, p) = tiny () in
  (* a,b -> 0; c -> 1; p -> 2 *)
  let map = Array.make 4 0 in
  map.(a) <- 0; map.(bb) <- 0; map.(c) <- 1; map.(p) <- 2;
  let coarse, m = Csr.contract csr ~map ~coarse_nodes:3 in
  Alcotest.(check bool) "validates" true (Csr.validate coarse = Ok ());
  Alcotest.(check int) "nodes" 3 (Csr.num_nodes coarse);
  (* n2 = {a,b} has one coarse endpoint and no pad: dropped.
     n1 -> {0,1}, n3 -> {2,1} (pad net kept), n4 -> {0,1}. *)
  Alcotest.(check int) "nets" 3 (Csr.num_nets coarse);
  Alcotest.(check (array int)) "sizes" [| 3; 3; 0 |] coarse.Csr.size;
  Alcotest.(check (array int)) "flops" [| 1; 0; 0 |] coarse.Csr.flops;
  Alcotest.(check int) "pads" 1 (Csr.num_pads coarse);
  (* every kept net's coarse pins = dedup of mapped fine pins *)
  Array.iteri
    (fun ce fe ->
      let want =
        List.sort_uniq compare
          (Array.to_list (Array.map (fun v -> map.(v)) (Csr.net_pins csr fe)))
      in
      let got = List.sort compare (Array.to_list (Csr.net_pins coarse ce)) in
      Alcotest.(check (list int)) "kept pins" want got)
    m.Csr.kept_nets;
  (* exact inverse projection *)
  let fine = Csr.project m [| 5; 7; 9 |] in
  Alcotest.(check (array int)) "project" [| 5; 5; 7; 9 |] fine

let test_contract_rejects () =
  let csr, (a, bb, c, p) = tiny () in
  let expect_invalid name map nc =
    match Csr.contract csr ~map ~coarse_nodes:nc with
    | _ -> Alcotest.failf "%s: accepted" name
    | exception Invalid_argument _ -> ()
  in
  (* pad merged with a cell *)
  let map = Array.make 4 0 in
  map.(a) <- 0; map.(bb) <- 0; map.(c) <- 1; map.(p) <- 1;
  expect_invalid "pad merge" map 2;
  (* empty coarse id *)
  let map = Array.make 4 0 in
  map.(a) <- 0; map.(bb) <- 0; map.(c) <- 0; map.(p) <- 2;
  expect_invalid "empty group" map 3;
  (* out of range *)
  let map = Array.make 4 0 in
  map.(a) <- 0; map.(bb) <- 5; map.(c) <- 1; map.(p) <- 2;
  expect_invalid "out of range" map 3

(* --- Matching ------------------------------------------------------ *)

let groups_of map nc =
  let g = Array.make nc [] in
  Array.iteri (fun v c -> g.(c) <- v :: g.(c)) map;
  g

let test_matching_pairs () =
  let h = circuit 21 in
  let csr = Csr.of_hgraph h in
  let map, nc = Matching.compute ~policy:Matching.Pairs ~max_weight:8 ~seed:3 csr in
  Alcotest.(check bool) "shrinks" true (nc < Csr.num_nodes csr);
  Array.iter
    (fun members ->
      match members with
      | [] -> Alcotest.fail "empty group"
      | [ _ ] -> ()
      | [ u; v ] ->
        if Csr.is_pad csr u || Csr.is_pad csr v then
          Alcotest.fail "pad matched";
        Alcotest.(check bool)
          "weight cap" true
          (csr.Csr.size.(u) + csr.Csr.size.(v) <= 8)
      | _ -> Alcotest.fail "group larger than a pair")
    (groups_of map nc)

let test_matching_weight_cap () =
  let h = circuit 22 in
  let csr = Csr.of_hgraph h in
  List.iter
    (fun policy ->
      let map, nc = Matching.compute ~policy ~max_weight:3 ~seed:9 csr in
      Array.iter
        (fun members ->
          match members with
          | [ _ ] -> ()
          | ms ->
            let w = List.fold_left (fun s v -> s + csr.Csr.size.(v)) 0 ms in
            Alcotest.(check bool) "cap" true (w <= 3))
        (groups_of map nc))
    [ Matching.Pairs; Matching.Agglomerate ]

let test_matching_weight_one () =
  let h = circuit 23 in
  let csr = Csr.of_hgraph h in
  let _, nc = Matching.compute ~policy:Matching.Pairs ~max_weight:1 ~seed:1 csr in
  Alcotest.(check int) "all singletons" (Csr.num_nodes csr) nc

let test_matching_deterministic () =
  let h = circuit 24 in
  let csr = Csr.of_hgraph h in
  let m1, n1 = Matching.compute ~policy:Matching.Agglomerate ~max_weight:6 ~seed:42 csr in
  let m2, n2 = Matching.compute ~policy:Matching.Agglomerate ~max_weight:6 ~seed:42 csr in
  Alcotest.(check int) "same count" n1 n2;
  Alcotest.(check (array int)) "same map" m1 m2

let test_matching_within () =
  let h = circuit 25 in
  let csr = Csr.of_hgraph h in
  let within = Array.init (Csr.num_nodes csr) (fun v -> v mod 3) in
  let map, nc = Matching.compute ~policy:Matching.Pairs ~max_weight:8 ~within ~seed:5 csr in
  Array.iter
    (fun members ->
      match List.map (fun v -> within.(v)) members with
      | [] | [ _ ] -> ()
      | w :: rest ->
        List.iter (fun w' -> Alcotest.(check int) "same side" w w') rest)
    (groups_of map nc)

(* --- Engine -------------------------------------------------------- *)

let big_circuit seed = circuit ~cells:1500 ~pads:80 seed

let test_engine_end_to_end () =
  let hg = big_circuit 31 in
  let device = Device.xc3042 in
  let r = Engine.run hg device in
  let res = r.Engine.res in
  Alcotest.(check bool) "feasible" true res.Fpart.Driver.feasible;
  Alcotest.(check bool) "coarsened" true (r.Engine.levels > 0);
  Alcotest.(check bool) "ratio" true (r.Engine.coarsen_ratio > 1.0);
  Alcotest.(check bool) "k >= M" true
    (res.Fpart.Driver.k >= res.Fpart.Driver.m_lower);
  (* the reported partition really is feasible and its cut honest *)
  let k = res.Fpart.Driver.k in
  let a = res.Fpart.Driver.assignment in
  let o = Oracle.recompute hg ~k ~assign:(fun v -> a.(v)) in
  Alcotest.(check int) "cut" o.Oracle.cut res.Fpart.Driver.cut;
  let s_max = Device.s_max device ~delta:0.9 in
  for b = 0 to k - 1 do
    if o.Oracle.sizes.(b) > s_max then Alcotest.failf "block %d oversize" b;
    if o.Oracle.pins.(b) > device.Device.t_max then
      Alcotest.failf "block %d pins over" b
  done

let test_engine_jobs_identical () =
  let hg = big_circuit 32 in
  let run jobs =
    Engine.run ~base:{ Fpart.Config.default with Fpart.Config.jobs } hg
      Device.xc3042
  in
  let r1 = run 1 and r4 = run 4 in
  Alcotest.(check int) "same k" r1.Engine.res.Fpart.Driver.k
    r4.Engine.res.Fpart.Driver.k;
  Alcotest.(check int) "same cut" r1.Engine.res.Fpart.Driver.cut
    r4.Engine.res.Fpart.Driver.cut;
  Alcotest.(check (array int)) "same assignment"
    r1.Engine.res.Fpart.Driver.assignment r4.Engine.res.Fpart.Driver.assignment

let test_engine_never_worsens () =
  let hg = big_circuit 33 in
  let r = Engine.run hg Device.xc3042 in
  Alcotest.(check bool) "has levels" true (r.Engine.level_stats <> []);
  List.iter
    (fun (s : Engine.level_stat) ->
      Alcotest.(check bool)
        (Printf.sprintf "level %d no worse" s.Engine.level)
        true
        (Cost.compare_value s.Engine.value_after s.Engine.value_before <= 0))
    r.Engine.level_stats

let test_engine_no_coarsening () =
  (* threshold above the node count: degenerates to the flat driver *)
  let hg = circuit ~cells:300 ~pads:30 34 in
  let config = { Engine.default_config with Engine.coarsen_thresh = 1_000_000 } in
  let r = Engine.run ~config hg Device.xc3020 in
  Alcotest.(check int) "no levels" 0 r.Engine.levels;
  Alcotest.(check (float 0.0001)) "ratio 1" 1.0 r.Engine.coarsen_ratio;
  Alcotest.(check bool) "feasible" true r.Engine.res.Fpart.Driver.feasible

let test_engine_two_cycles () =
  let hg = big_circuit 35 in
  let config = { Engine.default_config with Engine.cycles = 2 } in
  let r1 = Engine.run hg Device.xc3042 in
  let r2 = Engine.run ~config hg Device.xc3042 in
  Alcotest.(check bool) "feasible" true r2.Engine.res.Fpart.Driver.feasible;
  Alcotest.(check bool) "more refinements" true
    (List.length r2.Engine.level_stats > List.length r1.Engine.level_stats);
  (* the extra cycle can only help (refinement never worsens) *)
  Alcotest.(check bool) "cut no worse" true
    (r2.Engine.res.Fpart.Driver.cut <= r1.Engine.res.Fpart.Driver.cut)

let test_engine_selfcheck_clean () =
  let hg = big_circuit 36 in
  let before = Selfcheck.violations_seen () in
  let base =
    { Fpart.Config.default with Fpart.Config.selfcheck = Selfcheck.Cheap }
  in
  let r = Engine.run ~base hg Device.xc3042 in
  Alcotest.(check bool) "feasible" true r.Engine.res.Fpart.Driver.feasible;
  Alcotest.(check int) "no violations" before (Selfcheck.violations_seen ())

let test_rent_spec () =
  let spec = Netlist.Generator.rent_spec ~name:"r" ~cells:500 ~seed:1 in
  Alcotest.(check int) "rent pads" 68 spec.Netlist.Generator.pads;
  let h = Netlist.Generator.generate spec in
  Alcotest.(check int) "cells" 500 (Hg.num_cells h);
  Alcotest.(check int) "pads" 68 (Hg.num_pads h);
  Alcotest.(check bool) "validates" true (Hg.validate h = Ok ())

(* --- Properties ---------------------------------------------------- *)

(* coarsen ∘ uncoarsen is exact: weights are conserved, every kept
   net's coarse pins are the dedup of its mapped fine pins, and the
   coarse aggregates of any partition equal the flat aggregates of its
   projection. *)
let prop_contract_exact =
  QCheck.Test.make ~count:12 ~name:"contraction is exact"
    QCheck.(pair (int_range 100 400) (int_range 0 1000))
    (fun (cells, seed) ->
      let hg = circuit ~cells ~pads:(max 4 (cells / 10)) seed in
      let csr = Csr.of_hgraph hg in
      let map, nc =
        Matching.compute ~policy:Matching.Pairs ~max_weight:8 ~seed csr
      in
      let coarse, m = Csr.contract csr ~map ~coarse_nodes:nc in
      if Csr.validate coarse <> Ok () then false
      else if Csr.total_size coarse <> Csr.total_size csr then false
      else if Csr.num_pads coarse <> Csr.num_pads csr then false
      else begin
        let pins_ok = ref true in
        Array.iteri
          (fun ce fe ->
            let want =
              List.sort_uniq compare
                (Array.to_list
                   (Array.map (fun v -> map.(v)) (Csr.net_pins csr fe)))
            in
            let got =
              List.sort compare (Array.to_list (Csr.net_pins coarse ce))
            in
            if want <> got then pins_ok := false)
          m.Csr.kept_nets;
        (* arbitrary 3-way coarse partition; aggregates must project *)
        let k = 3 in
        let coarse_assign = Array.init nc (fun c -> c mod k) in
        let flat = Csr.project m coarse_assign in
        let oc =
          Oracle.recompute (Csr.to_hgraph coarse) ~k
            ~assign:(fun c -> coarse_assign.(c))
        in
        let off = Oracle.recompute hg ~k ~assign:(fun v -> flat.(v)) in
        !pins_ok && oc.Oracle.cut = off.Oracle.cut
        && oc.Oracle.sizes = off.Oracle.sizes
        && oc.Oracle.pins = off.Oracle.pins
        && oc.Oracle.flops = off.Oracle.flops
      end)

let () =
  Alcotest.run "mlevel"
    [
      ( "induce",
        [
          Alcotest.test_case "identity" `Quick test_induce_identity;
          Alcotest.test_case "subset" `Quick test_induce_subset;
          Alcotest.test_case "net restriction" `Quick test_induce_net_restriction;
        ] );
      ( "csr",
        [
          Alcotest.test_case "roundtrip" `Quick test_csr_roundtrip;
          Alcotest.test_case "contract tiny" `Quick test_contract_tiny;
          Alcotest.test_case "contract rejects" `Quick test_contract_rejects;
        ] );
      ( "matching",
        [
          Alcotest.test_case "pairs" `Quick test_matching_pairs;
          Alcotest.test_case "weight cap" `Quick test_matching_weight_cap;
          Alcotest.test_case "weight one" `Quick test_matching_weight_one;
          Alcotest.test_case "deterministic" `Quick test_matching_deterministic;
          Alcotest.test_case "within" `Quick test_matching_within;
        ] );
      ( "engine",
        [
          Alcotest.test_case "end to end" `Quick test_engine_end_to_end;
          Alcotest.test_case "jobs identical" `Quick test_engine_jobs_identical;
          Alcotest.test_case "never worsens" `Quick test_engine_never_worsens;
          Alcotest.test_case "no coarsening" `Quick test_engine_no_coarsening;
          Alcotest.test_case "two cycles" `Quick test_engine_two_cycles;
          Alcotest.test_case "selfcheck clean" `Quick test_engine_selfcheck_clean;
          Alcotest.test_case "rent spec" `Quick test_rent_spec;
        ] );
      ("property", List.map QCheck_alcotest.to_alcotest [ prop_contract_exact ]);
    ]
