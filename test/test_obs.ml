(* Fpart_obs: JSON round-trips, metrics registry semantics, and the
   driver instrumentation contract (every Improve event wrapped in a
   matching improve.pass span). *)

module Json = Fpart_obs.Json
module Metrics = Fpart_obs.Metrics
module Sink = Fpart_obs.Sink

let with_obs f =
  (* capture records in memory with the layer enabled, then restore the
     disabled default whatever happens *)
  let sink, drain = Sink.memory () in
  Metrics.reset ();
  Metrics.set_enabled true;
  Sink.set sink;
  Fun.protect
    ~finally:(fun () ->
      Metrics.set_enabled false;
      Sink.set Sink.null;
      Metrics.reset ())
    (fun () -> f drain)

(* --- Json --- *)

let sample =
  Json.Obj
    [
      ("null", Json.Null);
      ("bools", Json.List [ Json.Bool true; Json.Bool false ]);
      ("int", Json.Int (-42));
      ("float", Json.Float 1.5);
      ("int_float", Json.Float 3.0);
      ("tiny", Json.Float 6.103515625e-05);
      ("str", Json.Str "a \"quoted\"\nline\twith\\controls\x01");
      ("nested", Json.Obj [ ("empty_list", Json.List []); ("empty_obj", Json.Obj []) ]);
    ]

let test_json_roundtrip () =
  match Json.of_string (Json.to_string sample) with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok parsed ->
    Alcotest.(check string) "round trip" (Json.to_string sample) (Json.to_string parsed);
    Alcotest.(check bool) "structural equality" true (sample = parsed)

let test_json_escapes () =
  Alcotest.(check string)
    "escaped" "\"a\\\"b\\\\c\\nd\\u0001\""
    (Json.to_string (Json.Str "a\"b\\c\nd\x01"));
  (match Json.of_string "\"\\u0041\\u00e9\"" with
  | Ok (Json.Str s) -> Alcotest.(check string) "unicode escapes" "A\xc3\xa9" s
  | _ -> Alcotest.fail "unicode escape parse");
  Alcotest.(check string) "non-finite is null" "null"
    (Json.to_string (Json.Float Float.nan))

let test_json_numbers () =
  (match Json.of_string "[0, -7, 2.5, 1e3, -1.25e-2]" with
  | Ok
      (Json.List
        [ Json.Int 0; Json.Int (-7); Json.Float 2.5; Json.Float 1000.0; Json.Float f ])
    ->
    Alcotest.(check (float 1e-12)) "exp number" (-0.0125) f
  | Ok j -> Alcotest.failf "unexpected shape: %s" (Json.to_string j)
  | Error e -> Alcotest.failf "parse failed: %s" e);
  (* integral floats keep their floatness through a round trip *)
  match Json.of_string (Json.to_string (Json.Float 3.0)) with
  | Ok (Json.Float 3.0) -> ()
  | _ -> Alcotest.fail "3.0 must stay a float"

let test_json_rejects () =
  let bad = [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "1 2"; "\"unterminated" ] in
  List.iter
    (fun s ->
      match Json.of_string s with
      | Ok j -> Alcotest.failf "%S parsed as %s" s (Json.to_string j)
      | Error _ -> ())
    bad

(* --- Metrics --- *)

let test_counters () =
  with_obs (fun _ ->
      let c = Metrics.counter "test.counter" in
      Alcotest.(check int) "fresh" 0 (Metrics.counter_value c);
      Metrics.incr c;
      Metrics.add c 10;
      Alcotest.(check int) "incremented" 11 (Metrics.counter_value c);
      let c' = Metrics.counter "test.counter" in
      Metrics.incr c';
      Alcotest.(check int) "interned by name" 12 (Metrics.counter_value c))

let test_histogram_quantiles () =
  with_obs (fun _ ->
      let h = Metrics.histogram "test.hist" in
      for i = 1 to 100 do
        Metrics.observe h (float_of_int i)
      done;
      Alcotest.(check int) "count" 100 (Metrics.count h);
      Alcotest.(check (float 1e-9)) "p50" 50.0 (Metrics.quantile h 0.5);
      Alcotest.(check (float 1e-9)) "p95" 95.0 (Metrics.quantile h 0.95);
      Alcotest.(check (float 1e-9)) "max" 100.0 (Metrics.hist_max h);
      Alcotest.(check (float 1e-9)) "mean" 50.5 (Metrics.hist_mean h))

let test_disabled_is_inert () =
  Metrics.reset ();
  Metrics.set_enabled false;
  let h = Metrics.histogram "test.inert" in
  Metrics.observe h 1.0;
  Alcotest.(check int) "no samples while disabled" 0 (Metrics.count h);
  let sp = Metrics.span_begin () in
  Alcotest.(check bool) "span sentinel" true (sp < 0.0);
  let sink, drain = Sink.memory () in
  Sink.set sink;
  Metrics.span_end sp ~name:"test.span" ~attrs:[];
  Sink.set Sink.null;
  Alcotest.(check int) "no records while disabled" 0 (List.length (drain ()))

let test_span_emission () =
  with_obs (fun drain ->
      let sp = Metrics.span_begin () in
      Metrics.span_end sp ~name:"test.span" ~attrs:[ ("k", Json.Int 3) ];
      match drain () with
      | [ record ] ->
        Alcotest.(check (option string))
          "type" (Some "span")
          Option.(bind (Json.member "type" record) Json.str);
        Alcotest.(check (option string))
          "name" (Some "test.span")
          Option.(bind (Json.member "name" record) Json.str);
        Alcotest.(check (option int))
          "attr" (Some 3)
          Option.(bind (Json.member "k" record) Json.int);
        Alcotest.(check bool) "duration histogram fed" true
          (Metrics.count (Metrics.histogram "test.span") = 1)
      | records -> Alcotest.failf "expected 1 record, got %d" (List.length records))

let test_report_well_formed () =
  with_obs (fun _ ->
      Metrics.incr (Metrics.counter "test.report.counter");
      Metrics.observe (Metrics.histogram "test.report.hist") 2.0;
      let rendered = Json.to_string (Metrics.report ()) in
      match Json.of_string rendered with
      | Error e -> Alcotest.failf "report is not valid JSON: %s (%s)" e rendered
      | Ok j ->
        let counters = Json.member "counters" j in
        Alcotest.(check (option int))
          "counter present" (Some 1)
          Option.(bind (bind counters (Json.member "test.report.counter")) Json.int))

(* --- driver instrumentation --- *)

let improve_key = function
  | Json.Obj _ as j ->
    ( Option.(bind (Json.member "iteration" j) Json.int),
      Option.(bind (Json.member "kind" j) Json.str) )
  | _ -> (None, None)

let test_driver_improve_spans () =
  (* every Improve trace event must ride inside a matching improve.pass
     span: same multiset of (iteration, kind) *)
  let hg =
    Netlist.Generator.generate
      (Netlist.Generator.default_spec ~name:"obs" ~cells:300 ~pads:40 ~seed:3)
  in
  let result, records =
    with_obs (fun drain ->
        let r = Fpart.Driver.run hg Device.xc2064 in
        (r, drain ()))
  in
  let spans name =
    List.filter
      (fun j ->
        Option.(bind (Json.member "type" j) Json.str) = Some "span"
        && Option.(bind (Json.member "name" j) Json.str) = Some name)
      records
  in
  let improve_events =
    List.filter
      (function Fpart.Trace.Improve _ -> true | _ -> false)
      result.Fpart.Driver.trace
  in
  let improve_spans = spans "improve.pass" in
  Alcotest.(check bool) "multiple iterations exercised" true
    (result.Fpart.Driver.k > 1);
  Alcotest.(check int) "one span per Improve event" (List.length improve_events)
    (List.length improve_spans);
  let span_keys = List.map improve_key improve_spans |> List.sort compare in
  let event_keys =
    List.map
      (function
        | Fpart.Trace.Improve { iteration; kind; _ } ->
          (Some iteration, Some (Fpart.Trace.kind_name kind))
        | _ -> assert false)
      improve_events
    |> List.sort compare
  in
  Alcotest.(check bool) "span/event (iteration, kind) multisets match" true
    (span_keys = event_keys);
  let iteration_spans = spans "driver.iteration" in
  let bipartition_events =
    List.filter
      (function Fpart.Trace.Bipartition _ -> true | _ -> false)
      result.Fpart.Driver.trace
  in
  Alcotest.(check int) "one span per driver iteration"
    (List.length bipartition_events)
    (List.length iteration_spans);
  Alcotest.(check int) "exactly one run span" 1 (List.length (spans "driver.run"))

let test_trace_event_json () =
  let e =
    Fpart.Trace.Improve
      {
        iteration = 2;
        kind = Fpart.Trace.Min_io;
        blocks = [ 1; 2 ];
        value =
          { Partition.Cost.feasible_blocks = 1; distance = 0.5; t_sum = 9; io_bal = 0.0 };
        passes = 3;
        moves = 4;
        restarts = 1;
      }
  in
  let j = Fpart.Trace.to_json e in
  (match Json.of_string (Json.to_string j) with
  | Ok j' -> Alcotest.(check bool) "round trips" true (j = j')
  | Error err -> Alcotest.failf "invalid JSON: %s" err);
  Alcotest.(check (option string))
    "kind" (Some "min_io")
    Option.(bind (Json.member "kind" j) Json.str)

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "round trip" `Quick test_json_roundtrip;
          Alcotest.test_case "escapes" `Quick test_json_escapes;
          Alcotest.test_case "numbers" `Quick test_json_numbers;
          Alcotest.test_case "rejects malformed" `Quick test_json_rejects;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters" `Quick test_counters;
          Alcotest.test_case "histogram quantiles" `Quick test_histogram_quantiles;
          Alcotest.test_case "disabled layer is inert" `Quick test_disabled_is_inert;
          Alcotest.test_case "span emission" `Quick test_span_emission;
          Alcotest.test_case "report well-formed" `Quick test_report_well_formed;
        ] );
      ( "driver",
        [
          Alcotest.test_case "improve events wrapped in spans" `Quick
            test_driver_improve_spans;
          Alcotest.test_case "trace event json" `Quick test_trace_event_json;
        ] );
    ]
