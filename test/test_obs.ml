(* Fpart_obs: JSON round-trips, metrics registry semantics, and the
   driver instrumentation contract (every Improve event wrapped in a
   matching improve.pass span). *)

module Json = Fpart_obs.Json
module Metrics = Fpart_obs.Metrics
module Sink = Fpart_obs.Sink

let with_obs f =
  (* capture records in memory with the layer enabled, then restore the
     disabled default whatever happens *)
  let sink, drain = Sink.memory () in
  Metrics.reset ();
  Fpart_obs.Recorder.reset ();
  Metrics.set_enabled true;
  Sink.set sink;
  Fun.protect
    ~finally:(fun () ->
      Metrics.set_enabled false;
      Sink.set Sink.null;
      Metrics.reset ();
      Fpart_obs.Recorder.reset ())
    (fun () -> f drain)

(* --- Json --- *)

let sample =
  Json.Obj
    [
      ("null", Json.Null);
      ("bools", Json.List [ Json.Bool true; Json.Bool false ]);
      ("int", Json.Int (-42));
      ("float", Json.Float 1.5);
      ("int_float", Json.Float 3.0);
      ("tiny", Json.Float 6.103515625e-05);
      ("str", Json.Str "a \"quoted\"\nline\twith\\controls\x01");
      ("nested", Json.Obj [ ("empty_list", Json.List []); ("empty_obj", Json.Obj []) ]);
    ]

let test_json_roundtrip () =
  match Json.of_string (Json.to_string sample) with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok parsed ->
    Alcotest.(check string) "round trip" (Json.to_string sample) (Json.to_string parsed);
    Alcotest.(check bool) "structural equality" true (sample = parsed)

let test_json_escapes () =
  Alcotest.(check string)
    "escaped" "\"a\\\"b\\\\c\\nd\\u0001\""
    (Json.to_string (Json.Str "a\"b\\c\nd\x01"));
  (match Json.of_string "\"\\u0041\\u00e9\"" with
  | Ok (Json.Str s) -> Alcotest.(check string) "unicode escapes" "A\xc3\xa9" s
  | _ -> Alcotest.fail "unicode escape parse");
  Alcotest.(check string) "non-finite is null" "null"
    (Json.to_string (Json.Float Float.nan))

let test_json_numbers () =
  (match Json.of_string "[0, -7, 2.5, 1e3, -1.25e-2]" with
  | Ok
      (Json.List
        [ Json.Int 0; Json.Int (-7); Json.Float 2.5; Json.Float 1000.0; Json.Float f ])
    ->
    Alcotest.(check (float 1e-12)) "exp number" (-0.0125) f
  | Ok j -> Alcotest.failf "unexpected shape: %s" (Json.to_string j)
  | Error e -> Alcotest.failf "parse failed: %s" e);
  (* integral floats keep their floatness through a round trip *)
  match Json.of_string (Json.to_string (Json.Float 3.0)) with
  | Ok (Json.Float 3.0) -> ()
  | _ -> Alcotest.fail "3.0 must stay a float"

let test_json_rejects () =
  let bad = [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "1 2"; "\"unterminated" ] in
  List.iter
    (fun s ->
      match Json.of_string s with
      | Ok j -> Alcotest.failf "%S parsed as %s" s (Json.to_string j)
      | Error _ -> ())
    bad

(* --- Metrics --- *)

let test_counters () =
  with_obs (fun _ ->
      let c = Metrics.counter "test.counter" in
      Alcotest.(check int) "fresh" 0 (Metrics.counter_value c);
      Metrics.incr c;
      Metrics.add c 10;
      Alcotest.(check int) "incremented" 11 (Metrics.counter_value c);
      let c' = Metrics.counter "test.counter" in
      Metrics.incr c';
      Alcotest.(check int) "interned by name" 12 (Metrics.counter_value c))

let test_histogram_quantiles () =
  with_obs (fun _ ->
      let h = Metrics.histogram "test.hist" in
      for i = 1 to 100 do
        Metrics.observe h (float_of_int i)
      done;
      Alcotest.(check int) "count" 100 (Metrics.count h);
      Alcotest.(check (float 1e-9)) "p50" 50.0 (Metrics.quantile h 0.5);
      Alcotest.(check (float 1e-9)) "p95" 95.0 (Metrics.quantile h 0.95);
      Alcotest.(check (float 1e-9)) "max" 100.0 (Metrics.hist_max h);
      Alcotest.(check (float 1e-9)) "mean" 50.5 (Metrics.hist_mean h))

let test_disabled_is_inert () =
  Metrics.reset ();
  Metrics.set_enabled false;
  let h = Metrics.histogram "test.inert" in
  Metrics.observe h 1.0;
  Alcotest.(check int) "no samples while disabled" 0 (Metrics.count h);
  let sp = Metrics.span_begin () in
  Alcotest.(check bool) "span sentinel" true (sp < 0.0);
  let sink, drain = Sink.memory () in
  Sink.set sink;
  Metrics.span_end sp ~name:"test.span" ~attrs:[];
  Sink.set Sink.null;
  Alcotest.(check int) "no records while disabled" 0 (List.length (drain ()))

let test_span_emission () =
  with_obs (fun drain ->
      let sp = Metrics.span_begin () in
      Metrics.span_end sp ~name:"test.span" ~attrs:[ ("k", Json.Int 3) ];
      match drain () with
      | [ record ] ->
        Alcotest.(check (option string))
          "type" (Some "span")
          Option.(bind (Json.member "type" record) Json.str);
        Alcotest.(check (option string))
          "name" (Some "test.span")
          Option.(bind (Json.member "name" record) Json.str);
        Alcotest.(check (option int))
          "attr" (Some 3)
          Option.(bind (Json.member "k" record) Json.int);
        Alcotest.(check bool) "duration histogram fed" true
          (Metrics.count (Metrics.histogram "test.span") = 1)
      | records -> Alcotest.failf "expected 1 record, got %d" (List.length records))

let test_report_well_formed () =
  with_obs (fun _ ->
      Metrics.incr (Metrics.counter "test.report.counter");
      Metrics.observe (Metrics.histogram "test.report.hist") 2.0;
      let rendered = Json.to_string (Metrics.report ()) in
      match Json.of_string rendered with
      | Error e -> Alcotest.failf "report is not valid JSON: %s (%s)" e rendered
      | Ok j ->
        let counters = Json.member "counters" j in
        Alcotest.(check (option int))
          "counter present" (Some 1)
          Option.(bind (bind counters (Json.member "test.report.counter")) Json.int))

let test_quantile_rank_formula () =
  (* Nearest rank: quantile p of N samples is the ⌈p·N⌉-th smallest,
     with p=0 pinned to the minimum and p=1 to the maximum. *)
  with_obs (fun _ ->
      let h = Metrics.histogram "test.rank" in
      for i = 1 to 30 do
        Metrics.observe h (float_of_int i)
      done;
      (* 0.1 *. 30. = 3.0000000000000004: the ceiling must still name
         the 3rd sample, not the 4th *)
      Alcotest.(check (float 1e-9)) "p10 of 30" 3.0 (Metrics.quantile h 0.1);
      Alcotest.(check (float 1e-9)) "p0 is min" 1.0 (Metrics.quantile h 0.0);
      Alcotest.(check (float 1e-9)) "p1 is max" 30.0 (Metrics.quantile h 1.0);
      Alcotest.(check (float 1e-9)) "p50 of 30" 15.0 (Metrics.quantile h 0.5);
      let one = Metrics.histogram "test.rank.single" in
      Metrics.observe one 7.0;
      List.iter
        (fun p ->
          Alcotest.(check (float 1e-9))
            (Printf.sprintf "single sample at p=%g" p)
            7.0 (Metrics.quantile one p))
        [ 0.0; 0.25; 0.5; 0.99; 1.0 ];
      let four = Metrics.histogram "test.rank.four" in
      List.iter (Metrics.observe four) [ 10.0; 20.0; 30.0; 40.0 ];
      Alcotest.(check (float 1e-9)) "p50 of 4" 20.0 (Metrics.quantile four 0.5);
      Alcotest.(check (float 1e-9)) "p75 of 4" 30.0 (Metrics.quantile four 0.75);
      Alcotest.(check (float 1e-9)) "p76 of 4" 40.0 (Metrics.quantile four 0.76))

(* --- Clock guard --- *)

let test_clock_regression_guard () =
  let ticks = ref [ 5.0; 4.0; 3.0; 10.0; 2.0 ] in
  let source () =
    match !ticks with
    | [] -> 99.0
    | t :: rest ->
      ticks := rest;
      t
  in
  Fun.protect
    ~finally:(fun () -> Fpart_obs.Clock.set_source Sys.time)
    (fun () ->
      Fpart_obs.Clock.set_source source;
      let samples = List.init 5 (fun _ -> Fpart_obs.Clock.now ()) in
      Alcotest.(check (list (float 1e-9)))
        "regressions clamped to the high-water mark"
        [ 5.0; 5.0; 5.0; 10.0; 10.0 ] samples;
      (* a fresh source must not stay pinned at the old maximum *)
      Fpart_obs.Clock.set_source (fun () -> 1.0);
      Alcotest.(check (float 1e-9))
        "set_source resets the guard" 1.0
        (Fpart_obs.Clock.now ()))

(* --- Sink composition and error reporting --- *)

let test_tee_filtered_ordering () =
  let is_span j = Option.(bind (Json.member "type" j) Json.str) = Some "span" in
  let a, drain_a = Sink.memory () in
  let b, drain_b = Sink.memory () in
  let sink = Sink.tee [ Sink.filtered ~keep:is_span a; b ] in
  let span i =
    Json.Obj [ ("type", Json.Str "span"); ("name", Json.Str "s"); ("i", Json.Int i) ]
  in
  let trace i =
    Json.Obj [ ("type", Json.Str "trace"); ("i", Json.Int i) ]
  in
  let stream = [ span 0; trace 1; span 2; trace 3; span 4 ] in
  List.iter sink.Sink.emit stream;
  sink.Sink.close ();
  Alcotest.(check int) "filtered kept only spans" 3 (List.length (drain_a ()));
  Alcotest.(check bool) "tee preserves full stream in order" true
    (drain_b () = stream);
  Alcotest.(check bool) "filtered preserves relative order" true
    (drain_a () = List.filter is_span stream)

(* Route stderr to a file while [f] runs, returning its contents. *)
let with_captured_stderr f =
  let path = Filename.temp_file "fpart_obs_stderr" ".txt" in
  let saved = Unix.dup Unix.stderr in
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
  flush stderr;
  Unix.dup2 fd Unix.stderr;
  Unix.close fd;
  let restore () =
    flush stderr;
    Unix.dup2 saved Unix.stderr;
    Unix.close saved
  in
  let v = try f () with e -> restore (); raise e in
  restore ();
  let text = In_channel.with_open_bin path In_channel.input_all in
  Sys.remove path;
  (v, text)

let test_jsonl_write_error_reported_once () =
  if not (Sys.file_exists "/dev/full") then ()
  else begin
    let oc = open_out "/dev/full" in
    let sink = Sink.jsonl oc in
    let big = Json.Obj [ ("pad", Json.Str (String.make 4096 'x')) ] in
    let (), err =
      with_captured_stderr (fun () ->
          (* enough to overflow the channel buffer mid-stream, then a
             close: neither may raise, and the failure is reported once *)
          for _ = 1 to 64 do
            sink.Sink.emit big
          done;
          sink.Sink.close ())
    in
    let occurrences =
      String.split_on_char '\n' err
      |> List.filter (fun l ->
             let re = "jsonl sink error" in
             let rec find i =
               i + String.length re <= String.length l
               && (String.sub l i (String.length re) = re || find (i + 1))
             in
             find 0)
      |> List.length
    in
    Alcotest.(check int) "error reported exactly once" 1 occurrences
  end

(* --- Recorder --- *)

module Recorder = Fpart_obs.Recorder
module Inspect = Fpart_obs.Inspect

let span_skeleton records =
  List.filter_map
    (fun j ->
      match Option.(bind (Json.member "type" j) Json.str) with
      | Some "span" ->
        Some
          ( Option.(bind (Json.member "name" j) Json.str),
            Option.(bind (Json.member "id" j) Json.int),
            Option.(bind (Json.member "parent" j) Json.int) )
      | _ -> None)
    records

let test_recorder_tree () =
  with_obs (fun drain ->
      let root = Recorder.span_begin "r.root" in
      let child = Recorder.span_begin "r.child" in
      Alcotest.(check bool) "current_id is the open child" true
        (Recorder.current_id () <> 0);
      Recorder.event [ ("type", Json.Str "blob"); ("k", Json.Int 1) ];
      Recorder.span_end child ~attrs:[];
      let sibling = Recorder.span_begin "r.sibling" in
      Recorder.span_end sibling ~attrs:[];
      Recorder.span_end root ~attrs:[ ("done", Json.Bool true) ];
      let records = drain () in
      let t = Inspect.of_records records in
      Alcotest.(check (list string)) "no validation errors" [] (Inspect.validate t);
      (match span_skeleton records with
      | [ (Some "r.child", Some cid, Some cp);
          (Some "r.sibling", Some sid, Some sp);
          (Some "r.root", Some rid, Some rp) ] ->
        Alcotest.(check int) "root is a root" 0 rp;
        Alcotest.(check int) "child parented to root" rid cp;
        Alcotest.(check int) "sibling parented to root" rid sp;
        Alcotest.(check bool) "distinct ids" true (cid <> sid && sid <> rid)
      | sk -> Alcotest.failf "unexpected skeleton (%d spans)" (List.length sk));
      (* the blob must reference the span that was open when it fired *)
      let blob =
        List.find
          (fun j -> Option.(bind (Json.member "type" j) Json.str) = Some "blob")
          records
      in
      let child_id =
        List.filter_map
          (fun (n, id, _) -> if n = Some "r.child" then id else None)
          (span_skeleton records)
        |> List.hd
      in
      Alcotest.(check (option int))
        "blob tied to enclosing span" (Some child_id)
        Option.(bind (Json.member "span" blob) Json.int);
      Alcotest.(check bool) "histograms observed" true
        (Metrics.count (Metrics.histogram "r.root") = 1))

let test_recorder_unbalanced_end () =
  with_obs (fun drain ->
      let outer = Recorder.span_begin "u.outer" in
      let _leaked = Recorder.span_begin "u.leaked" in
      (* an exception unwound past [u.leaked]: ending the outer span
         must drop the stray id so later spans don't orphan *)
      Recorder.span_end outer ~attrs:[];
      let next = Recorder.span_begin "u.next" in
      Recorder.span_end next ~attrs:[];
      let t = Inspect.of_records (drain ()) in
      List.iter
        (fun s ->
          if s.Inspect.name = "u.next" then
            Alcotest.(check int) "later span is a root" 0 s.Inspect.parent)
        (Inspect.spans t))

let jobs_skeleton ~jobs =
  with_obs (fun drain ->
      Fpart_exec.Pool.with_pool ~jobs (fun pool ->
          let enclosing = Recorder.span_begin "p.batch" in
          let _ =
            Fpart_exec.Pool.map pool
              (fun i () ->
                let sp = Recorder.span_begin (Printf.sprintf "p.task%d" i) in
                let inner = Recorder.span_begin "p.inner" in
                Recorder.event [ ("type", Json.Str "note"); ("task", Json.Int i) ];
                Recorder.span_end inner ~attrs:[];
                Recorder.span_end sp ~attrs:[ ("task", Json.Int i) ])
              (Array.make 4 ())
          in
          Recorder.span_end enclosing ~attrs:[]);
      let records = drain () in
      let skeleton =
        List.map
          (fun j ->
            ( Option.(bind (Json.member "type" j) Json.str),
              Option.(bind (Json.member "name" j) Json.str),
              Option.(bind (Json.member "id" j) Json.int),
              Option.(bind (Json.member "parent" j) Json.int),
              Option.(bind (Json.member "span" j) Json.int) ))
          records
      in
      (records, skeleton))

let test_recorder_jobs_deterministic () =
  let records1, skel1 = jobs_skeleton ~jobs:1 in
  let records4, skel4 = jobs_skeleton ~jobs:4 in
  Alcotest.(check int) "same record count" (List.length records1)
    (List.length records4);
  Alcotest.(check bool) "id/parent/order stream identical across jobs" true
    (skel1 = skel4);
  List.iter
    (fun records ->
      let t = Inspect.of_records records in
      Alcotest.(check (list string)) "well-formed tree" [] (Inspect.validate t);
      (* task roots must be re-parented under the enclosing batch span *)
      let batch_id =
        List.filter_map
          (fun s -> if s.Inspect.name = "p.batch" then Some s.Inspect.id else None)
          (Inspect.spans t)
        |> List.hd
      in
      List.iter
        (fun s ->
          if String.length s.Inspect.name >= 6 && String.sub s.Inspect.name 0 6 = "p.task"
          then
            Alcotest.(check int)
              (s.Inspect.name ^ " under batch")
              batch_id s.Inspect.parent)
        (Inspect.spans t))
    [ records1; records4 ]

(* --- Chrome export --- *)

let test_chrome_export_strict_json () =
  let path = Filename.temp_file "fpart_obs_chrome" ".json" in
  Metrics.reset ();
  Metrics.set_enabled true;
  Sink.set (Sink.chrome (open_out path));
  Fun.protect
    ~finally:(fun () ->
      Metrics.set_enabled false;
      Sink.set Sink.null;
      Metrics.reset ();
      Sys.remove path)
    (fun () ->
      let root = Recorder.span_begin "c.root" in
      let child = Recorder.span_begin "c.child" in
      Recorder.event [ ("type", Json.Str "mark") ];
      Recorder.span_end child ~attrs:[];
      Recorder.span_end root ~attrs:[];
      Sink.close_current ();
      let text = In_channel.with_open_bin path In_channel.input_all in
      (match Json.of_string (String.trim text) with
      | Error e -> Alcotest.failf "chrome export is not strict JSON: %s" e
      | Ok j ->
        (match Json.member "traceEvents" j with
        | Some (Json.List evs) ->
          Alcotest.(check bool) "events present" true (List.length evs >= 3);
          let phases =
            List.filter_map (fun e -> Option.bind (Json.member "ph" e) Json.str) evs
          in
          Alcotest.(check bool) "X phases present" true (List.mem "X" phases);
          Alcotest.(check bool) "thread metadata present" true (List.mem "M" phases)
        | _ -> Alcotest.fail "no traceEvents list"));
      (* the loader folds it back into a validated span tree *)
      match Inspect.load_file path with
      | Error e -> Alcotest.failf "Inspect.load_file: %s" e
      | Ok t ->
        Alcotest.(check (list string)) "round-tripped tree validates" []
          (Inspect.validate t);
        Alcotest.(check int) "both spans recovered" 2
          (List.length (Inspect.spans t)))

(* --- Inspect --- *)

let test_inspect_analysis () =
  let mk_span ~id ~parent ~name ~t ~dur =
    Json.Obj
      [
        ("type", Json.Str "span");
        ("name", Json.Str name);
        ("dur_ms", Json.Float dur);
        ("id", Json.Int id);
        ("parent", Json.Int parent);
        ("track", Json.Int 0);
        ("t_ms", Json.Float t);
      ]
  in
  let records =
    [
      mk_span ~id:2 ~parent:1 ~name:"inner" ~t:1.0 ~dur:4.0;
      mk_span ~id:1 ~parent:0 ~name:"outer" ~t:0.0 ~dur:10.0;
      Json.Obj
        [
          ("type", Json.Str "schedule");
          ("iteration", Json.Int 1);
          ("step", Json.Str "pair_latest");
          ("blocks", Json.List [ Json.Int 0; Json.Int 1 ]);
          ("passes", Json.Int 2);
          ("moves", Json.Int 100);
          ("moves_retained", Json.Int 40);
          ("restarts", Json.Int 0);
          ("cut_before", Json.Int 30);
          ("cut_after", Json.Int 20);
          ("span", Json.Int 2);
        ];
    ]
  in
  let t = Inspect.of_records records in
  Alcotest.(check (list string)) "validates" [] (Inspect.validate t);
  (match Inspect.hotspots t with
  | [ a; b ] ->
    (* outer: 10ms total, 6 self (10 - 4 child); inner: 4 total, 4 self *)
    Alcotest.(check string) "outer leads by self time" "outer" a.Inspect.h_name;
    Alcotest.(check (float 1e-9)) "outer self" 6.0 a.Inspect.h_self_ms;
    Alcotest.(check (float 1e-9)) "inner self" 4.0 b.Inspect.h_self_ms;
    Alcotest.(check (float 1e-9)) "outer total" 10.0 a.Inspect.h_total_ms
  | rows -> Alcotest.failf "expected 2 hotspot rows, got %d" (List.length rows));
  (match Inspect.convergence t with
  | [ r ] ->
    Alcotest.(check int) "moves" 100 r.Inspect.c_moves;
    Alcotest.(check int) "retained" 40 r.Inspect.c_retained;
    Alcotest.(check int) "cut after" 20 r.Inspect.c_cut_after;
    Alcotest.(check string) "step" "pair_latest" r.Inspect.c_step
  | rows -> Alcotest.failf "expected 1 conv row, got %d" (List.length rows));
  (* orphans are reported *)
  let orphan = Inspect.of_records [ mk_span ~id:5 ~parent:9 ~name:"x" ~t:0.0 ~dur:1.0 ] in
  Alcotest.(check bool) "orphan detected" true (Inspect.validate orphan <> []);
  (* jsonl loader reports the failing line *)
  match Inspect.load_string "{\"type\":\"span\"}\nnot json\n" with
  | Error e ->
    Alcotest.(check bool) "line number in error" true
      (String.length e >= 6 && String.sub e 0 6 = "line 2")
  | Ok _ -> Alcotest.fail "malformed jsonl accepted"

(* --- driver instrumentation --- *)

let improve_key = function
  | Json.Obj _ as j ->
    ( Option.(bind (Json.member "iteration" j) Json.int),
      Option.(bind (Json.member "kind" j) Json.str) )
  | _ -> (None, None)

let test_driver_improve_spans () =
  (* every Improve trace event must ride inside a matching improve.pass
     span: same multiset of (iteration, kind) *)
  let hg =
    Netlist.Generator.generate
      (Netlist.Generator.default_spec ~name:"obs" ~cells:300 ~pads:40 ~seed:3)
  in
  let result, records =
    with_obs (fun drain ->
        let r = Fpart.Driver.run hg Device.xc2064 in
        (r, drain ()))
  in
  let spans name =
    List.filter
      (fun j ->
        Option.(bind (Json.member "type" j) Json.str) = Some "span"
        && Option.(bind (Json.member "name" j) Json.str) = Some name)
      records
  in
  let improve_events =
    List.filter
      (function Fpart.Trace.Improve _ -> true | _ -> false)
      result.Fpart.Driver.trace
  in
  let improve_spans = spans "improve.pass" in
  Alcotest.(check bool) "multiple iterations exercised" true
    (result.Fpart.Driver.k > 1);
  Alcotest.(check int) "one span per Improve event" (List.length improve_events)
    (List.length improve_spans);
  let span_keys = List.map improve_key improve_spans |> List.sort compare in
  let event_keys =
    List.map
      (function
        | Fpart.Trace.Improve { iteration; kind; _ } ->
          (Some iteration, Some (Fpart.Trace.kind_name kind))
        | _ -> assert false)
      improve_events
    |> List.sort compare
  in
  Alcotest.(check bool) "span/event (iteration, kind) multisets match" true
    (span_keys = event_keys);
  let iteration_spans = spans "driver.iteration" in
  let bipartition_events =
    List.filter
      (function Fpart.Trace.Bipartition _ -> true | _ -> false)
      result.Fpart.Driver.trace
  in
  Alcotest.(check int) "one span per driver iteration"
    (List.length bipartition_events)
    (List.length iteration_spans);
  Alcotest.(check int) "exactly one run span" 1 (List.length (spans "driver.run"))

let test_trace_event_json () =
  let e =
    Fpart.Trace.Improve
      {
        iteration = 2;
        kind = Fpart.Trace.Min_io;
        blocks = [ 1; 2 ];
        value =
          { Partition.Cost.feasible_blocks = 1; distance = 0.5; t_sum = 9; io_bal = 0.0 };
        passes = 3;
        moves = 4;
        restarts = 1;
      }
  in
  let j = Fpart.Trace.to_json e in
  (match Json.of_string (Json.to_string j) with
  | Ok j' -> Alcotest.(check bool) "round trips" true (j = j')
  | Error err -> Alcotest.failf "invalid JSON: %s" err);
  Alcotest.(check (option string))
    "kind" (Some "min_io")
    Option.(bind (Json.member "kind" j) Json.str)

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "round trip" `Quick test_json_roundtrip;
          Alcotest.test_case "escapes" `Quick test_json_escapes;
          Alcotest.test_case "numbers" `Quick test_json_numbers;
          Alcotest.test_case "rejects malformed" `Quick test_json_rejects;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters" `Quick test_counters;
          Alcotest.test_case "histogram quantiles" `Quick test_histogram_quantiles;
          Alcotest.test_case "quantile rank formula pinned" `Quick
            test_quantile_rank_formula;
          Alcotest.test_case "disabled layer is inert" `Quick test_disabled_is_inert;
          Alcotest.test_case "span emission" `Quick test_span_emission;
          Alcotest.test_case "report well-formed" `Quick test_report_well_formed;
        ] );
      ( "driver",
        [
          Alcotest.test_case "improve events wrapped in spans" `Quick
            test_driver_improve_spans;
          Alcotest.test_case "trace event json" `Quick test_trace_event_json;
        ] );
      ( "clock",
        [
          Alcotest.test_case "regressing source clamped" `Quick
            test_clock_regression_guard;
        ] );
      ( "sink",
        [
          Alcotest.test_case "tee and filtered composition" `Quick
            test_tee_filtered_ordering;
          Alcotest.test_case "jsonl write error reported once" `Quick
            test_jsonl_write_error_reported_once;
          Alcotest.test_case "chrome export strict JSON" `Quick
            test_chrome_export_strict_json;
        ] );
      ( "recorder",
        [
          Alcotest.test_case "span tree structure" `Quick test_recorder_tree;
          Alcotest.test_case "unbalanced end recovers" `Quick
            test_recorder_unbalanced_end;
          Alcotest.test_case "deterministic across --jobs" `Quick
            test_recorder_jobs_deterministic;
        ] );
      ( "inspect",
        [
          Alcotest.test_case "hotspots, convergence, validation" `Quick
            test_inspect_analysis;
        ] );
    ]
