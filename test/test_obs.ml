(* Fpart_obs: JSON round-trips, metrics registry semantics, and the
   driver instrumentation contract (every Improve event wrapped in a
   matching improve.pass span). *)

module Json = Fpart_obs.Json
module Metrics = Fpart_obs.Metrics
module Sink = Fpart_obs.Sink

let with_obs f =
  (* capture records in memory with the layer enabled, then restore the
     disabled default whatever happens *)
  let sink, drain = Sink.memory () in
  Metrics.reset ();
  Fpart_obs.Recorder.reset ();
  Metrics.set_enabled true;
  Sink.set sink;
  Fun.protect
    ~finally:(fun () ->
      Metrics.set_enabled false;
      Sink.set Sink.null;
      Metrics.reset ();
      Fpart_obs.Recorder.reset ())
    (fun () -> f drain)

(* --- Json --- *)

let sample =
  Json.Obj
    [
      ("null", Json.Null);
      ("bools", Json.List [ Json.Bool true; Json.Bool false ]);
      ("int", Json.Int (-42));
      ("float", Json.Float 1.5);
      ("int_float", Json.Float 3.0);
      ("tiny", Json.Float 6.103515625e-05);
      ("str", Json.Str "a \"quoted\"\nline\twith\\controls\x01");
      ("nested", Json.Obj [ ("empty_list", Json.List []); ("empty_obj", Json.Obj []) ]);
    ]

let test_json_roundtrip () =
  match Json.of_string (Json.to_string sample) with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok parsed ->
    Alcotest.(check string) "round trip" (Json.to_string sample) (Json.to_string parsed);
    Alcotest.(check bool) "structural equality" true (sample = parsed)

let test_json_escapes () =
  Alcotest.(check string)
    "escaped" "\"a\\\"b\\\\c\\nd\\u0001\""
    (Json.to_string (Json.Str "a\"b\\c\nd\x01"));
  (match Json.of_string "\"\\u0041\\u00e9\"" with
  | Ok (Json.Str s) -> Alcotest.(check string) "unicode escapes" "A\xc3\xa9" s
  | _ -> Alcotest.fail "unicode escape parse");
  Alcotest.(check string) "non-finite is null" "null"
    (Json.to_string (Json.Float Float.nan))

let test_json_numbers () =
  (match Json.of_string "[0, -7, 2.5, 1e3, -1.25e-2]" with
  | Ok
      (Json.List
        [ Json.Int 0; Json.Int (-7); Json.Float 2.5; Json.Float 1000.0; Json.Float f ])
    ->
    Alcotest.(check (float 1e-12)) "exp number" (-0.0125) f
  | Ok j -> Alcotest.failf "unexpected shape: %s" (Json.to_string j)
  | Error e -> Alcotest.failf "parse failed: %s" e);
  (* integral floats keep their floatness through a round trip *)
  match Json.of_string (Json.to_string (Json.Float 3.0)) with
  | Ok (Json.Float 3.0) -> ()
  | _ -> Alcotest.fail "3.0 must stay a float"

let test_json_rejects () =
  let bad = [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "1 2"; "\"unterminated" ] in
  List.iter
    (fun s ->
      match Json.of_string s with
      | Ok j -> Alcotest.failf "%S parsed as %s" s (Json.to_string j)
      | Error _ -> ())
    bad

(* --- Metrics --- *)

let test_counters () =
  with_obs (fun _ ->
      let c = Metrics.counter "test.counter" in
      Alcotest.(check int) "fresh" 0 (Metrics.counter_value c);
      Metrics.incr c;
      Metrics.add c 10;
      Alcotest.(check int) "incremented" 11 (Metrics.counter_value c);
      let c' = Metrics.counter "test.counter" in
      Metrics.incr c';
      Alcotest.(check int) "interned by name" 12 (Metrics.counter_value c))

let test_histogram_quantiles () =
  with_obs (fun _ ->
      let h = Metrics.histogram "test.hist" in
      for i = 1 to 100 do
        Metrics.observe h (float_of_int i)
      done;
      Alcotest.(check int) "count" 100 (Metrics.count h);
      Alcotest.(check (float 1e-9)) "p50" 50.0 (Metrics.quantile h 0.5);
      Alcotest.(check (float 1e-9)) "p95" 95.0 (Metrics.quantile h 0.95);
      Alcotest.(check (float 1e-9)) "max" 100.0 (Metrics.hist_max h);
      Alcotest.(check (float 1e-9)) "mean" 50.5 (Metrics.hist_mean h))

let test_disabled_is_inert () =
  Metrics.reset ();
  Metrics.set_enabled false;
  let h = Metrics.histogram "test.inert" in
  Metrics.observe h 1.0;
  Alcotest.(check int) "no samples while disabled" 0 (Metrics.count h);
  let sp = Metrics.span_begin () in
  Alcotest.(check bool) "span sentinel" true (sp < 0.0);
  let sink, drain = Sink.memory () in
  Sink.set sink;
  Metrics.span_end sp ~name:"test.span" ~attrs:[];
  Sink.set Sink.null;
  Alcotest.(check int) "no records while disabled" 0 (List.length (drain ()))

let test_span_emission () =
  with_obs (fun drain ->
      let sp = Metrics.span_begin () in
      Metrics.span_end sp ~name:"test.span" ~attrs:[ ("k", Json.Int 3) ];
      match drain () with
      | [ record ] ->
        Alcotest.(check (option string))
          "type" (Some "span")
          Option.(bind (Json.member "type" record) Json.str);
        Alcotest.(check (option string))
          "name" (Some "test.span")
          Option.(bind (Json.member "name" record) Json.str);
        Alcotest.(check (option int))
          "attr" (Some 3)
          Option.(bind (Json.member "k" record) Json.int);
        Alcotest.(check bool) "duration histogram fed" true
          (Metrics.count (Metrics.histogram "test.span") = 1)
      | records -> Alcotest.failf "expected 1 record, got %d" (List.length records))

let test_report_well_formed () =
  with_obs (fun _ ->
      Metrics.incr (Metrics.counter "test.report.counter");
      Metrics.observe (Metrics.histogram "test.report.hist") 2.0;
      let rendered = Json.to_string (Metrics.report ()) in
      match Json.of_string rendered with
      | Error e -> Alcotest.failf "report is not valid JSON: %s (%s)" e rendered
      | Ok j ->
        let counters = Json.member "counters" j in
        Alcotest.(check (option int))
          "counter present" (Some 1)
          Option.(bind (bind counters (Json.member "test.report.counter")) Json.int))

let test_quantile_rank_formula () =
  (* Nearest rank: quantile p of N samples is the ⌈p·N⌉-th smallest,
     with p=0 pinned to the minimum and p=1 to the maximum. *)
  with_obs (fun _ ->
      let h = Metrics.histogram "test.rank" in
      for i = 1 to 30 do
        Metrics.observe h (float_of_int i)
      done;
      (* 0.1 *. 30. = 3.0000000000000004: the ceiling must still name
         the 3rd sample, not the 4th *)
      Alcotest.(check (float 1e-9)) "p10 of 30" 3.0 (Metrics.quantile h 0.1);
      Alcotest.(check (float 1e-9)) "p0 is min" 1.0 (Metrics.quantile h 0.0);
      Alcotest.(check (float 1e-9)) "p1 is max" 30.0 (Metrics.quantile h 1.0);
      Alcotest.(check (float 1e-9)) "p50 of 30" 15.0 (Metrics.quantile h 0.5);
      let one = Metrics.histogram "test.rank.single" in
      Metrics.observe one 7.0;
      List.iter
        (fun p ->
          Alcotest.(check (float 1e-9))
            (Printf.sprintf "single sample at p=%g" p)
            7.0 (Metrics.quantile one p))
        [ 0.0; 0.25; 0.5; 0.99; 1.0 ];
      let four = Metrics.histogram "test.rank.four" in
      List.iter (Metrics.observe four) [ 10.0; 20.0; 30.0; 40.0 ];
      Alcotest.(check (float 1e-9)) "p50 of 4" 20.0 (Metrics.quantile four 0.5);
      Alcotest.(check (float 1e-9)) "p75 of 4" 30.0 (Metrics.quantile four 0.75);
      Alcotest.(check (float 1e-9)) "p76 of 4" 40.0 (Metrics.quantile four 0.76))

(* --- Clock guard --- *)

let test_clock_regression_guard () =
  let ticks = ref [ 5.0; 4.0; 3.0; 10.0; 2.0 ] in
  let source () =
    match !ticks with
    | [] -> 99.0
    | t :: rest ->
      ticks := rest;
      t
  in
  Fun.protect
    ~finally:(fun () -> Fpart_obs.Clock.set_source Sys.time)
    (fun () ->
      Fpart_obs.Clock.set_source source;
      let samples = List.init 5 (fun _ -> Fpart_obs.Clock.now ()) in
      Alcotest.(check (list (float 1e-9)))
        "regressions clamped to the high-water mark"
        [ 5.0; 5.0; 5.0; 10.0; 10.0 ] samples;
      (* a fresh source must not stay pinned at the old maximum *)
      Fpart_obs.Clock.set_source (fun () -> 1.0);
      Alcotest.(check (float 1e-9))
        "set_source resets the guard" 1.0
        (Fpart_obs.Clock.now ()))

(* --- Sink composition and error reporting --- *)

let test_tee_filtered_ordering () =
  let is_span j = Option.(bind (Json.member "type" j) Json.str) = Some "span" in
  let a, drain_a = Sink.memory () in
  let b, drain_b = Sink.memory () in
  let sink = Sink.tee [ Sink.filtered ~keep:is_span a; b ] in
  let span i =
    Json.Obj [ ("type", Json.Str "span"); ("name", Json.Str "s"); ("i", Json.Int i) ]
  in
  let trace i =
    Json.Obj [ ("type", Json.Str "trace"); ("i", Json.Int i) ]
  in
  let stream = [ span 0; trace 1; span 2; trace 3; span 4 ] in
  List.iter sink.Sink.emit stream;
  sink.Sink.close ();
  Alcotest.(check int) "filtered kept only spans" 3 (List.length (drain_a ()));
  Alcotest.(check bool) "tee preserves full stream in order" true
    (drain_b () = stream);
  Alcotest.(check bool) "filtered preserves relative order" true
    (drain_a () = List.filter is_span stream)

(* Route stderr to a file while [f] runs, returning its contents. *)
let with_captured_stderr f =
  let path = Filename.temp_file "fpart_obs_stderr" ".txt" in
  let saved = Unix.dup Unix.stderr in
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
  flush stderr;
  Unix.dup2 fd Unix.stderr;
  Unix.close fd;
  let restore () =
    flush stderr;
    Unix.dup2 saved Unix.stderr;
    Unix.close saved
  in
  let v = try f () with e -> restore (); raise e in
  restore ();
  let text = In_channel.with_open_bin path In_channel.input_all in
  Sys.remove path;
  (v, text)

let test_jsonl_write_error_reported_once () =
  if not (Sys.file_exists "/dev/full") then ()
  else begin
    let oc = open_out "/dev/full" in
    let sink = Sink.jsonl oc in
    let big = Json.Obj [ ("pad", Json.Str (String.make 4096 'x')) ] in
    let (), err =
      with_captured_stderr (fun () ->
          (* enough to overflow the channel buffer mid-stream, then a
             close: neither may raise, and the failure is reported once *)
          for _ = 1 to 64 do
            sink.Sink.emit big
          done;
          sink.Sink.close ())
    in
    let occurrences =
      String.split_on_char '\n' err
      |> List.filter (fun l ->
             let re = "jsonl sink error" in
             let rec find i =
               i + String.length re <= String.length l
               && (String.sub l i (String.length re) = re || find (i + 1))
             in
             find 0)
      |> List.length
    in
    Alcotest.(check int) "error reported exactly once" 1 occurrences
  end

(* --- Recorder --- *)

module Recorder = Fpart_obs.Recorder
module Inspect = Fpart_obs.Inspect

let span_skeleton records =
  List.filter_map
    (fun j ->
      match Option.(bind (Json.member "type" j) Json.str) with
      | Some "span" ->
        Some
          ( Option.(bind (Json.member "name" j) Json.str),
            Option.(bind (Json.member "id" j) Json.int),
            Option.(bind (Json.member "parent" j) Json.int) )
      | _ -> None)
    records

let test_recorder_tree () =
  with_obs (fun drain ->
      let root = Recorder.span_begin "r.root" in
      let child = Recorder.span_begin "r.child" in
      Alcotest.(check bool) "current_id is the open child" true
        (Recorder.current_id () <> 0);
      Recorder.event [ ("type", Json.Str "blob"); ("k", Json.Int 1) ];
      Recorder.span_end child ~attrs:[];
      let sibling = Recorder.span_begin "r.sibling" in
      Recorder.span_end sibling ~attrs:[];
      Recorder.span_end root ~attrs:[ ("done", Json.Bool true) ];
      let records = drain () in
      let t = Inspect.of_records records in
      Alcotest.(check (list string)) "no validation errors" [] (Inspect.validate t);
      (match span_skeleton records with
      | [ (Some "r.child", Some cid, Some cp);
          (Some "r.sibling", Some sid, Some sp);
          (Some "r.root", Some rid, Some rp) ] ->
        Alcotest.(check int) "root is a root" 0 rp;
        Alcotest.(check int) "child parented to root" rid cp;
        Alcotest.(check int) "sibling parented to root" rid sp;
        Alcotest.(check bool) "distinct ids" true (cid <> sid && sid <> rid)
      | sk -> Alcotest.failf "unexpected skeleton (%d spans)" (List.length sk));
      (* the blob must reference the span that was open when it fired *)
      let blob =
        List.find
          (fun j -> Option.(bind (Json.member "type" j) Json.str) = Some "blob")
          records
      in
      let child_id =
        List.filter_map
          (fun (n, id, _) -> if n = Some "r.child" then id else None)
          (span_skeleton records)
        |> List.hd
      in
      Alcotest.(check (option int))
        "blob tied to enclosing span" (Some child_id)
        Option.(bind (Json.member "span" blob) Json.int);
      Alcotest.(check bool) "histograms observed" true
        (Metrics.count (Metrics.histogram "r.root") = 1))

let test_recorder_unbalanced_end () =
  with_obs (fun drain ->
      let outer = Recorder.span_begin "u.outer" in
      let _leaked = Recorder.span_begin "u.leaked" in
      (* an exception unwound past [u.leaked]: ending the outer span
         must drop the stray id so later spans don't orphan *)
      Recorder.span_end outer ~attrs:[];
      let next = Recorder.span_begin "u.next" in
      Recorder.span_end next ~attrs:[];
      let t = Inspect.of_records (drain ()) in
      List.iter
        (fun s ->
          if s.Inspect.name = "u.next" then
            Alcotest.(check int) "later span is a root" 0 s.Inspect.parent)
        (Inspect.spans t))

let jobs_skeleton ~jobs =
  with_obs (fun drain ->
      Fpart_exec.Pool.with_pool ~jobs (fun pool ->
          let enclosing = Recorder.span_begin "p.batch" in
          let _ =
            Fpart_exec.Pool.map pool
              (fun i () ->
                let sp = Recorder.span_begin (Printf.sprintf "p.task%d" i) in
                let inner = Recorder.span_begin "p.inner" in
                Recorder.event [ ("type", Json.Str "note"); ("task", Json.Int i) ];
                Recorder.span_end inner ~attrs:[];
                Recorder.span_end sp ~attrs:[ ("task", Json.Int i) ])
              (Array.make 4 ())
          in
          Recorder.span_end enclosing ~attrs:[]);
      let records = drain () in
      let skeleton =
        List.map
          (fun j ->
            ( Option.(bind (Json.member "type" j) Json.str),
              Option.(bind (Json.member "name" j) Json.str),
              Option.(bind (Json.member "id" j) Json.int),
              Option.(bind (Json.member "parent" j) Json.int),
              Option.(bind (Json.member "span" j) Json.int) ))
          records
      in
      (records, skeleton))

let test_recorder_jobs_deterministic () =
  let records1, skel1 = jobs_skeleton ~jobs:1 in
  let records4, skel4 = jobs_skeleton ~jobs:4 in
  Alcotest.(check int) "same record count" (List.length records1)
    (List.length records4);
  Alcotest.(check bool) "id/parent/order stream identical across jobs" true
    (skel1 = skel4);
  List.iter
    (fun records ->
      let t = Inspect.of_records records in
      Alcotest.(check (list string)) "well-formed tree" [] (Inspect.validate t);
      (* task roots must be re-parented under the enclosing batch span *)
      let batch_id =
        List.filter_map
          (fun s -> if s.Inspect.name = "p.batch" then Some s.Inspect.id else None)
          (Inspect.spans t)
        |> List.hd
      in
      List.iter
        (fun s ->
          if String.length s.Inspect.name >= 6 && String.sub s.Inspect.name 0 6 = "p.task"
          then
            Alcotest.(check int)
              (s.Inspect.name ^ " under batch")
              batch_id s.Inspect.parent)
        (Inspect.spans t))
    [ records1; records4 ]

(* --- Chrome export --- *)

let test_chrome_export_strict_json () =
  let path = Filename.temp_file "fpart_obs_chrome" ".json" in
  Metrics.reset ();
  Metrics.set_enabled true;
  Sink.set (Sink.chrome (open_out path));
  Fun.protect
    ~finally:(fun () ->
      Metrics.set_enabled false;
      Sink.set Sink.null;
      Metrics.reset ();
      Sys.remove path)
    (fun () ->
      let root = Recorder.span_begin "c.root" in
      let child = Recorder.span_begin "c.child" in
      Recorder.event [ ("type", Json.Str "mark") ];
      Recorder.span_end child ~attrs:[];
      Recorder.span_end root ~attrs:[];
      Sink.close_current ();
      let text = In_channel.with_open_bin path In_channel.input_all in
      (match Json.of_string (String.trim text) with
      | Error e -> Alcotest.failf "chrome export is not strict JSON: %s" e
      | Ok j ->
        (match Json.member "traceEvents" j with
        | Some (Json.List evs) ->
          Alcotest.(check bool) "events present" true (List.length evs >= 3);
          let phases =
            List.filter_map (fun e -> Option.bind (Json.member "ph" e) Json.str) evs
          in
          Alcotest.(check bool) "X phases present" true (List.mem "X" phases);
          Alcotest.(check bool) "thread metadata present" true (List.mem "M" phases)
        | _ -> Alcotest.fail "no traceEvents list"));
      (* the loader folds it back into a validated span tree *)
      match Inspect.load_file path with
      | Error e -> Alcotest.failf "Inspect.load_file: %s" e
      | Ok t ->
        Alcotest.(check (list string)) "round-tripped tree validates" []
          (Inspect.validate t);
        Alcotest.(check int) "both spans recovered" 2
          (List.length (Inspect.spans t)))

(* --- Inspect --- *)

let test_inspect_analysis () =
  let mk_span ~id ~parent ~name ~t ~dur =
    Json.Obj
      [
        ("type", Json.Str "span");
        ("name", Json.Str name);
        ("dur_ms", Json.Float dur);
        ("id", Json.Int id);
        ("parent", Json.Int parent);
        ("track", Json.Int 0);
        ("t_ms", Json.Float t);
      ]
  in
  let records =
    [
      mk_span ~id:2 ~parent:1 ~name:"inner" ~t:1.0 ~dur:4.0;
      mk_span ~id:1 ~parent:0 ~name:"outer" ~t:0.0 ~dur:10.0;
      Json.Obj
        [
          ("type", Json.Str "schedule");
          ("iteration", Json.Int 1);
          ("step", Json.Str "pair_latest");
          ("blocks", Json.List [ Json.Int 0; Json.Int 1 ]);
          ("passes", Json.Int 2);
          ("moves", Json.Int 100);
          ("moves_retained", Json.Int 40);
          ("restarts", Json.Int 0);
          ("cut_before", Json.Int 30);
          ("cut_after", Json.Int 20);
          ("span", Json.Int 2);
        ];
    ]
  in
  let t = Inspect.of_records records in
  Alcotest.(check (list string)) "validates" [] (Inspect.validate t);
  (match Inspect.hotspots t with
  | [ a; b ] ->
    (* outer: 10ms total, 6 self (10 - 4 child); inner: 4 total, 4 self *)
    Alcotest.(check string) "outer leads by self time" "outer" a.Inspect.h_name;
    Alcotest.(check (float 1e-9)) "outer self" 6.0 a.Inspect.h_self_ms;
    Alcotest.(check (float 1e-9)) "inner self" 4.0 b.Inspect.h_self_ms;
    Alcotest.(check (float 1e-9)) "outer total" 10.0 a.Inspect.h_total_ms
  | rows -> Alcotest.failf "expected 2 hotspot rows, got %d" (List.length rows));
  (match Inspect.convergence t with
  | [ r ] ->
    Alcotest.(check int) "moves" 100 r.Inspect.c_moves;
    Alcotest.(check int) "retained" 40 r.Inspect.c_retained;
    Alcotest.(check int) "cut after" 20 r.Inspect.c_cut_after;
    Alcotest.(check string) "step" "pair_latest" r.Inspect.c_step
  | rows -> Alcotest.failf "expected 1 conv row, got %d" (List.length rows));
  (* orphans are reported *)
  let orphan = Inspect.of_records [ mk_span ~id:5 ~parent:9 ~name:"x" ~t:0.0 ~dur:1.0 ] in
  Alcotest.(check bool) "orphan detected" true (Inspect.validate orphan <> []);
  (* jsonl loader reports the failing line *)
  match Inspect.load_string "{\"type\":\"span\"}\nnot json\n" with
  | Error e ->
    Alcotest.(check bool) "line number in error" true
      (String.length e >= 6 && String.sub e 0 6 = "line 2")
  | Ok _ -> Alcotest.fail "malformed jsonl accepted"

(* --- Resource --- *)

module Resource = Fpart_obs.Resource
module Ledger = Fpart_obs.Ledger

(* with_obs plus per-span resource sampling; restores the disabled
   default and drops scripted sources/watermarks whatever happens. *)
let with_res_obs f =
  with_obs (fun drain ->
      Resource.reset ();
      Resource.set_enabled true;
      Fun.protect
        ~finally:(fun () ->
          Resource.set_enabled false;
          Resource.set_source None;
          Resource.reset ())
        (fun () -> f drain))

(* Deterministic sampler: a per-domain call counter, so every delta is
   (samples taken on this domain between begin and end) — independent
   of scheduling, wall time and the real GC. *)
let scripted_source () =
  let key = Domain.DLS.new_key (fun () -> ref 0) in
  fun () ->
    let c = Domain.DLS.get key in
    incr c;
    let n = float_of_int !c in
    {
      Resource.minor_words = 1000.0 *. n;
      promoted_words = 10.0 *. n;
      major_words = 100.0 *. n;
      minor_gcs = !c;
      major_gcs = 0;
      compactions = 0;
      top_heap_words = 4096;
      os = { Resource.os_maxrss_kb = 2048; os_utime_s = 0.0; os_stime_s = 0.0 };
    }

let test_resource_sample_monotone () =
  (* the default sampler reads monotone GC counters: a second sample
     after allocating must not go backwards on any flow or peak *)
  let a = Resource.sample () in
  let sink = ref [] in
  for i = 1 to 10_000 do
    sink := Sys.opaque_identity (i, float_of_int i) :: !sink
  done;
  ignore (Sys.opaque_identity !sink);
  (* quick_stat's flow counters refresh at minor collections; force one
     so the allocation above is visible deterministically *)
  Gc.minor ();
  let b = Resource.sample () in
  Alcotest.(check bool) "minor words grow" true (b.Resource.minor_words >= a.Resource.minor_words);
  Alcotest.(check bool) "promoted monotone" true
    (b.Resource.promoted_words >= a.Resource.promoted_words);
  Alcotest.(check bool) "major monotone" true (b.Resource.major_words >= a.Resource.major_words);
  Alcotest.(check bool) "minor gcs monotone" true (b.Resource.minor_gcs >= a.Resource.minor_gcs);
  (* top_heap_words is NOT asserted monotone: on OCaml 5 it tracks live
     major-heap pools across domains and can shrink — the per-domain
     watermark cells exist to give summaries a true high-water mark *)
  let d = Resource.delta ~before:a ~after:b in
  Alcotest.(check bool) "allocated something" true (Resource.alloc_words d > 0.0);
  Alcotest.(check bool) "flow deltas non-negative" true
    (d.Resource.d_minor_words >= 0.0 && d.Resource.d_major_words >= 0.0
   && d.Resource.d_minor_gcs >= 0 && d.Resource.d_major_gcs >= 0)

let test_resource_delta_add () =
  let s = scripted_source () in
  let a = s () and b = s () and c = s () in
  let d1 = Resource.delta ~before:a ~after:b in
  let d2 = Resource.delta ~before:b ~after:c in
  Alcotest.(check (float 1e-9)) "minor flow" 1000.0 d1.Resource.d_minor_words;
  Alcotest.(check int) "gcs flow" 1 d1.Resource.d_minor_gcs;
  Alcotest.(check (float 1e-9))
    "alloc = minor + major - promoted" 1090.0 (Resource.alloc_words d1);
  let sum = Resource.add d1 d2 in
  Alcotest.(check (float 1e-9)) "add sums flows" 2000.0 sum.Resource.d_minor_words;
  Alcotest.(check int) "add maxes heap peak" 4096 sum.Resource.d_top_heap_words;
  Alcotest.(check int) "add maxes rss peak" 2048 sum.Resource.d_maxrss_kb;
  Alcotest.(check (float 1e-9)) "zero_delta is additive identity"
    (Resource.alloc_words sum)
    (Resource.alloc_words (Resource.add sum Resource.zero_delta))

let fnum field j =
  match Json.member field j with
  | Some (Json.Float f) -> f
  | Some (Json.Int i) -> float_of_int i
  | _ -> Alcotest.failf "missing numeric field %s" field

let spans_with field records =
  List.filter
    (fun j ->
      Option.(bind (Json.member "type" j) Json.str) = Some "span"
      && Json.member field j <> None)
    records

let counters records =
  List.filter
    (fun j -> Option.(bind (Json.member "type" j) Json.str) = Some "counter")
    records

let test_resource_span_records () =
  with_res_obs (fun drain ->
      let root = Recorder.span_begin "m.root" in
      let child = Recorder.span_begin "m.child" in
      let junk = ref [] in
      for i = 1 to 5_000 do
        junk := Sys.opaque_identity (float_of_int i) :: !junk
      done;
      ignore (Sys.opaque_identity !junk);
      Recorder.span_end child ~attrs:[];
      Recorder.span_end root ~attrs:[];
      let records = drain () in
      let t = Inspect.of_records records in
      Alcotest.(check (list string)) "validates" [] (Inspect.validate t);
      Alcotest.(check bool) "resource data detected" true (Inspect.has_resource_data t);
      let rspans = spans_with "alloc_w" records in
      Alcotest.(check int) "both spans carry alloc_w" 2 (List.length rspans);
      let alloc name =
        List.find
          (fun j -> Option.(bind (Json.member "name" j) Json.str) = Some name)
          rspans
        |> fnum "alloc_w"
      in
      Alcotest.(check bool) "span deltas non-negative" true
        (alloc "m.root" >= 0.0 && alloc "m.child" >= 0.0);
      (* flows are differences over the enclosing interval, so the root
         must account for at least its child's allocation *)
      Alcotest.(check bool) "root >= child" true (alloc "m.root" >= alloc "m.child");
      Alcotest.(check int) "one counter record per span" 2
        (List.length (counters records));
      List.iter
        (fun c ->
          Alcotest.(check bool) "counter peaks non-negative" true
            (Option.get Option.(bind (Json.member "heap_w" c) Json.int) >= 0
            && Option.get Option.(bind (Json.member "rss_kb" c) Json.int) >= 0))
        (counters records))

let test_resource_disabled_no_fields () =
  with_obs (fun drain ->
      (* recorder on, resource off: plain span records, no counters *)
      let sp = Recorder.span_begin "m.plain" in
      Recorder.span_end sp ~attrs:[];
      let records = drain () in
      Alcotest.(check int) "no alloc_w fields" 0 (List.length (spans_with "alloc_w" records));
      Alcotest.(check int) "no counter records" 0 (List.length (counters records)))

let test_resource_watermarks () =
  Resource.reset ();
  Fun.protect
    ~finally:(fun () ->
      Resource.set_source None;
      Resource.reset ())
    (fun () ->
      Resource.set_source (Some (scripted_source ()));
      ignore (Resource.sample ());
      let w = Resource.watermark () in
      Alcotest.(check int) "heap watermark raised" 4096 w.Resource.w_top_heap_words;
      Alcotest.(check int) "rss watermark raised" 2048 w.Resource.w_maxrss_kb;
      let snap = Resource.snapshot_watermark () in
      Alcotest.(check int) "snapshot captures" 4096 snap.Resource.w_top_heap_words;
      Alcotest.(check int) "snapshot zeroes the cell" 0
        (Resource.watermark ()).Resource.w_top_heap_words;
      Resource.merge_watermark { Resource.w_top_heap_words = 9999; w_maxrss_kb = 1 };
      Resource.merge_watermark snap;
      let m = Resource.watermark () in
      Alcotest.(check int) "merge maxes heap" 9999 m.Resource.w_top_heap_words;
      Alcotest.(check int) "merge maxes rss" 2048 m.Resource.w_maxrss_kb)

(* Strip the fields that legitimately differ between --jobs runs
   (timestamps, durations, domain tracks); everything else — including
   every resource field — must be bit-identical. *)
let stable_fields j =
  match j with
  | Json.Obj fields ->
    Json.Obj
      (List.filter
         (fun (k, _) -> k <> "t_ms" && k <> "dur_ms" && k <> "track")
         fields)
  | j -> j

let resource_jobs_records ~jobs =
  with_res_obs (fun drain ->
      Resource.set_source (Some (scripted_source ()));
      Fpart_exec.Pool.with_pool ~jobs (fun pool ->
          let batch = Recorder.span_begin "rj.batch" in
          let _ =
            Fpart_exec.Pool.map pool
              (fun i () ->
                let sp = Recorder.span_begin (Printf.sprintf "rj.task%d" i) in
                let inner = Recorder.span_begin "rj.inner" in
                Recorder.span_end inner ~attrs:[];
                Recorder.span_end sp ~attrs:[])
              (Array.make 4 ())
          in
          Recorder.span_end batch ~attrs:[]);
      drain ())

let test_resource_jobs_deterministic () =
  let r1 = resource_jobs_records ~jobs:1 in
  let r4 = resource_jobs_records ~jobs:4 in
  Alcotest.(check int) "same record count" (List.length r1) (List.length r4);
  Alcotest.(check bool) "records identical up to time/track" true
    (List.map stable_fields r1 = List.map stable_fields r4);
  let t1 = Inspect.of_records r1 and t4 = Inspect.of_records r4 in
  Alcotest.(check bool) "mem totals identical" true
    (Inspect.mem_totals t1 = Inspect.mem_totals t4);
  Alcotest.(check bool) "memspots identical" true
    (Inspect.memspots t1 = Inspect.memspots t4)

let test_mem_analysis () =
  (* synthetic trace: outer allocates 100w of which inner 60w; totals
     must count roots once, peaks max over all spans *)
  let mk ~id ~parent ~name ~alloc ~heap ~rss =
    Json.Obj
      [
        ("type", Json.Str "span");
        ("name", Json.Str name);
        ("dur_ms", Json.Float 1.0);
        ("id", Json.Int id);
        ("parent", Json.Int parent);
        ("track", Json.Int 0);
        ("t_ms", Json.Float 0.0);
        ("alloc_w", Json.Float alloc);
        ("minor_gcs", Json.Int 1);
        ("major_gcs", Json.Int 0);
        ("heap_w", Json.Int heap);
        ("rss_kb", Json.Int rss);
      ]
  in
  let t =
    Inspect.of_records
      [
        mk ~id:2 ~parent:1 ~name:"inner" ~alloc:60.0 ~heap:500 ~rss:70;
        mk ~id:1 ~parent:0 ~name:"outer" ~alloc:100.0 ~heap:400 ~rss:90;
      ]
  in
  (match Inspect.memspots t with
  | [ a; b ] ->
    Alcotest.(check string) "inner leads by self words" "inner" a.Inspect.m_name;
    Alcotest.(check (float 1e-9)) "inner self" 60.0 a.Inspect.m_self_w;
    Alcotest.(check (float 1e-9)) "outer self = total - child" 40.0 b.Inspect.m_self_w;
    Alcotest.(check (float 1e-9)) "outer total inclusive" 100.0 b.Inspect.m_total_w
  | rows -> Alcotest.failf "expected 2 memspot rows, got %d" (List.length rows));
  let tot = Inspect.mem_totals t in
  Alcotest.(check (float 1e-9)) "totals count roots once" 100.0 tot.Inspect.t_alloc_w;
  Alcotest.(check int) "gcs from roots" 1 tot.Inspect.t_minor_gcs;
  Alcotest.(check int) "heap peak over all spans" 500 tot.Inspect.t_heap_w;
  Alcotest.(check int) "rss peak over all spans" 90 tot.Inspect.t_rss_kb

(* --- Ledger --- *)

let entry ?(time = 1.0) ?(label = "bench/test") rows =
  {
    Ledger.time;
    git_rev = Some "deadbeef";
    kind = "bench";
    label;
    jobs = 1;
    repeats = 5;
    config_digest = None;
    netlist_digest = Some "0123";
    rows;
    resource = None;
  }

let row ?(higher_better = false) name value =
  { Ledger.name; value; unit_ = "s"; higher_better }

let with_temp_ledger f =
  let path = Filename.temp_file "fpart_ledger" ".jsonl" in
  Sys.remove path;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let test_ledger_roundtrip () =
  with_temp_ledger (fun path ->
      let e1 = entry ~time:1.0 [ row "a/wall" 1.5; row ~higher_better:true "a/rate" 10.0 ] in
      let e2 =
        {
          (entry ~time:2.0 [ row "a/wall" 1.4 ]) with
          Ledger.resource = Some (Json.Obj [ ("type", Json.Str "gc"); ("maxrss_kb", Json.Int 7) ]);
          git_rev = None;
        }
      in
      (match Ledger.append path e1 with Ok () -> () | Error e -> Alcotest.fail e);
      (match Ledger.append path e2 with Ok () -> () | Error e -> Alcotest.fail e);
      match Ledger.load path with
      | Error e -> Alcotest.failf "load failed: %s" e
      | Ok entries ->
        Alcotest.(check bool) "append/load round-trips" true (entries = [ e1; e2 ]))

let test_ledger_rejects_corruption () =
  with_temp_ledger (fun path ->
      (match Ledger.append path (entry [ row "a" 1.0 ]) with
      | Ok () -> ()
      | Error e -> Alcotest.fail e);
      Out_channel.with_open_gen
        [ Open_append; Open_wronly ]
        0o644 path
        (fun oc -> output_string oc "not json\n");
      (match Ledger.load path with
      | Ok _ -> Alcotest.fail "corrupt line accepted"
      | Error e ->
        Alcotest.(check bool) "error names the line" true
          (String.length e >= 6 && String.sub e 0 6 = "line 2"));
      (* a foreign schema tag must also fail the whole load *)
      let foreign =
        match Ledger.entry_to_json (entry [ row "a" 1.0 ]) with
        | Json.Obj fields ->
          Json.Obj
            (List.map
               (fun (k, v) -> if k = "schema" then (k, Json.Str "fpart-ledger/9") else (k, v))
               fields)
        | j -> j
      in
      Out_channel.with_open_gen
        [ Open_wronly; Open_trunc ]
        0o644 path
        (fun oc -> output_string oc (Json.to_string foreign ^ "\n"));
      match Ledger.load path with
      | Ok _ -> Alcotest.fail "foreign schema accepted"
      | Error e ->
        Alcotest.(check bool) "mentions the schema" true
          (let re = "fpart-ledger/9" in
           let rec find i =
             i + String.length re <= String.length e
             && (String.sub e i (String.length re) = re || find (i + 1))
           in
           find 0))

let test_regress_directions_and_floor () =
  let history v = List.mapi (fun i x -> entry ~time:(float_of_int i) [ row "w" x ]) v in
  (* quiet lower-better history, latest 50% worse: regression *)
  (match Inspect.regress (history [ 1.0; 1.0; 1.0; 1.5 ]) with
  | [ v ] ->
    Alcotest.(check bool) "worse flagged" true v.Inspect.v_regressed;
    Alcotest.(check (float 1e-9)) "baseline is median" 1.0 v.Inspect.v_baseline;
    Alcotest.(check (float 1e-9)) "worse delta" 0.5 v.Inspect.v_worse
  | vs -> Alcotest.failf "expected 1 verdict, got %d" (List.length vs));
  (* within the 20% floor: ok *)
  (match Inspect.regress (history [ 1.0; 1.0; 1.0; 1.1 ]) with
  | [ v ] -> Alcotest.(check bool) "small delta tolerated" false v.Inspect.v_regressed
  | _ -> Alcotest.fail "expected 1 verdict");
  (* improvement in a lower-better row: never a regression *)
  (match Inspect.regress (history [ 1.0; 1.0; 1.0; 0.2 ]) with
  | [ v ] -> Alcotest.(check bool) "improvement ok" false v.Inspect.v_regressed
  | _ -> Alcotest.fail "expected 1 verdict");
  (* higher-better row falling by half: regression *)
  let hb v =
    List.mapi
      (fun i x -> entry ~time:(float_of_int i) [ row ~higher_better:true "r" x ])
      v
  in
  (match Inspect.regress (hb [ 10.0; 10.0; 10.0; 5.0 ]) with
  | [ v ] -> Alcotest.(check bool) "throughput drop flagged" true v.Inspect.v_regressed
  | _ -> Alcotest.fail "expected 1 verdict");
  (* rows with no history are skipped, not judged *)
  match
    Inspect.regress
      [ entry ~time:0.0 [ row "old" 1.0 ]; entry ~time:1.0 [ row "new" 9.0 ] ]
  with
  | [] -> ()
  | vs -> Alcotest.failf "expected no verdicts, got %d" (List.length vs)

let test_regress_mad_widens_gate () =
  (* noisy history: median 1.2, scaled MAD ≈ 0.297, allowed ≈ 99%; a
     +67% latest passes where a quiet history would have failed, and a
     +150% latest still fails *)
  let history latest =
    List.mapi
      (fun i x -> entry ~time:(float_of_int i) [ row "n" x ])
      [ 1.0; 1.2; 1.4; latest ]
  in
  (match Inspect.regress (history 2.0) with
  | [ v ] ->
    Alcotest.(check bool) "noise widens allowance" false v.Inspect.v_regressed;
    Alcotest.(check bool) "allowance above the floor" true (v.Inspect.v_allowed > 0.20)
  | _ -> Alcotest.fail "expected 1 verdict");
  match Inspect.regress (history 3.0) with
  | [ v ] -> Alcotest.(check bool) "gross regression still flagged" true v.Inspect.v_regressed
  | _ -> Alcotest.fail "expected 1 verdict"

(* --- ledger workload digests --- *)

let test_ledger_digest_fields () =
  with_temp_ledger (fun path ->
      let e =
        {
          (entry [ row "a/wall" 1.0 ]) with
          Ledger.config_digest = Some "cafebabecafebabecafebabecafebabe";
          netlist_digest = Some "deadbeefdeadbeefdeadbeefdeadbeef";
        }
      in
      let text = Json.to_string (Ledger.entry_to_json e) in
      let has sub =
        let n = String.length sub and m = String.length text in
        let rec go i = i + n <= m && (String.sub text i n = sub || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "serialized config_digest" true
        (has "\"config_digest\":\"cafebabecafebabecafebabecafebabe\"");
      Alcotest.(check bool) "serialized netlist_digest" true
        (has "\"netlist_digest\":\"deadbeefdeadbeefdeadbeefdeadbeef\"");
      (match Ledger.entry_of_json (Ledger.entry_to_json e) with
      | Ok e' -> Alcotest.(check bool) "json round-trips digests" true (e = e')
      | Error err -> Alcotest.failf "entry_of_json: %s" err);
      (match Ledger.append path e with Ok () -> () | Error err -> Alcotest.fail err);
      match Ledger.load path with
      | Ok [ e' ] ->
        Alcotest.(check (option string)) "config digest survives the file"
          e.Ledger.config_digest e'.Ledger.config_digest;
        Alcotest.(check (option string)) "netlist digest survives the file"
          e.Ledger.netlist_digest e'.Ledger.netlist_digest
      | Ok es -> Alcotest.failf "expected 1 entry, got %d" (List.length es)
      | Error err -> Alcotest.failf "load: %s" err)

(* The digests are the grouping key for trend/regress and the cache
   key of fpart_serve; if the canonical form ever changes these pins
   must be bumped deliberately, not by accident. *)
let test_canonical_digests_pinned () =
  let b = Hypergraph.Hgraph.Builder.create () in
  let a = Hypergraph.Hgraph.Builder.add_cell b ~name:"a" ~size:2 in
  let c = Hypergraph.Hgraph.Builder.add_cell b ~name:"c" ~size:1 in
  let p = Hypergraph.Hgraph.Builder.add_pad b ~name:"p" in
  ignore (Hypergraph.Hgraph.Builder.add_net b ~name:"n0" [ p; a ]);
  ignore (Hypergraph.Hgraph.Builder.add_net b ~name:"n1" [ a; c ]);
  let h = Hypergraph.Hgraph.Builder.freeze b in
  Alcotest.(check string) "netlist digest pinned"
    "9a5dd5597aed719691dc235915b295d3"
    (Hypergraph.Hgraph.digest h);
  Alcotest.(check string) "config digest pinned"
    "fd629984474776c9e400fbd91470ccec"
    (Fpart.Config.digest Fpart.Config.default);
  Alcotest.(check string) "config digest with extra pinned"
    "a1ed4b3dc0eb5c1cb746f57729523dad"
    (Fpart.Config.digest ~extra:"algo=fm" Fpart.Config.default)

let test_regress_groups_by_workload () =
  let tagged ?config ?netlist time v =
    {
      (entry ~time [ row "w" v ]) with
      Ledger.config_digest = config;
      netlist_digest = netlist;
    }
  in
  let wl_a = Some "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa" in
  let wl_b = Some "bbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbb" in
  (* same-workload history gates the latest entry *)
  (match
     Inspect.regress
       [
         tagged ?config:wl_a ?netlist:wl_a 1.0 1.0;
         tagged ?config:wl_a ?netlist:wl_a 2.0 1.0;
         tagged ?config:wl_a ?netlist:wl_a 3.0 2.0;
       ]
   with
  | [ v ] -> Alcotest.(check bool) "same workload judged" true v.Inspect.v_regressed
  | vs -> Alcotest.failf "expected 1 verdict, got %d" (List.length vs));
  (* history from a different workload is not a baseline: a slow
     netlist must not flag a fast one *)
  (match
     Inspect.regress
       [
         tagged ?config:wl_a ?netlist:wl_a 1.0 1.0;
         tagged ?config:wl_a ?netlist:wl_a 2.0 1.0;
         tagged ?config:wl_b ?netlist:wl_b 3.0 2.0;
       ]
   with
  | [] -> ()
  | vs -> Alcotest.failf "foreign workload judged: %d verdicts" (List.length vs));
  (* digest-less legacy history still gates digested entries *)
  match
    Inspect.regress
      [
        tagged 1.0 1.0;
        tagged 2.0 1.0;
        tagged ?config:wl_a ?netlist:wl_a 3.0 2.0;
      ]
  with
  | [ v ] -> Alcotest.(check bool) "legacy fallback gates" true v.Inspect.v_regressed
  | vs -> Alcotest.failf "expected 1 verdict, got %d" (List.length vs)

(* --- driver instrumentation --- *)

let improve_key = function
  | Json.Obj _ as j ->
    ( Option.(bind (Json.member "iteration" j) Json.int),
      Option.(bind (Json.member "kind" j) Json.str) )
  | _ -> (None, None)

let test_driver_improve_spans () =
  (* every Improve trace event must ride inside a matching improve.pass
     span: same multiset of (iteration, kind) *)
  let hg =
    Netlist.Generator.generate
      (Netlist.Generator.default_spec ~name:"obs" ~cells:300 ~pads:40 ~seed:3)
  in
  let result, records =
    with_obs (fun drain ->
        let r = Fpart.Driver.run hg Device.xc2064 in
        (r, drain ()))
  in
  let spans name =
    List.filter
      (fun j ->
        Option.(bind (Json.member "type" j) Json.str) = Some "span"
        && Option.(bind (Json.member "name" j) Json.str) = Some name)
      records
  in
  let improve_events =
    List.filter
      (function Fpart.Trace.Improve _ -> true | _ -> false)
      result.Fpart.Driver.trace
  in
  let improve_spans = spans "improve.pass" in
  Alcotest.(check bool) "multiple iterations exercised" true
    (result.Fpart.Driver.k > 1);
  Alcotest.(check int) "one span per Improve event" (List.length improve_events)
    (List.length improve_spans);
  let span_keys = List.map improve_key improve_spans |> List.sort compare in
  let event_keys =
    List.map
      (function
        | Fpart.Trace.Improve { iteration; kind; _ } ->
          (Some iteration, Some (Fpart.Trace.kind_name kind))
        | _ -> assert false)
      improve_events
    |> List.sort compare
  in
  Alcotest.(check bool) "span/event (iteration, kind) multisets match" true
    (span_keys = event_keys);
  let iteration_spans = spans "driver.iteration" in
  let bipartition_events =
    List.filter
      (function Fpart.Trace.Bipartition _ -> true | _ -> false)
      result.Fpart.Driver.trace
  in
  Alcotest.(check int) "one span per driver iteration"
    (List.length bipartition_events)
    (List.length iteration_spans);
  Alcotest.(check int) "exactly one run span" 1 (List.length (spans "driver.run"))

let test_trace_event_json () =
  let e =
    Fpart.Trace.Improve
      {
        iteration = 2;
        kind = Fpart.Trace.Min_io;
        blocks = [ 1; 2 ];
        value =
          { Partition.Cost.feasible_blocks = 1; distance = 0.5; t_sum = 9; io_bal = 0.0 };
        passes = 3;
        moves = 4;
        restarts = 1;
      }
  in
  let j = Fpart.Trace.to_json e in
  (match Json.of_string (Json.to_string j) with
  | Ok j' -> Alcotest.(check bool) "round trips" true (j = j')
  | Error err -> Alcotest.failf "invalid JSON: %s" err);
  Alcotest.(check (option string))
    "kind" (Some "min_io")
    Option.(bind (Json.member "kind" j) Json.str)

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "round trip" `Quick test_json_roundtrip;
          Alcotest.test_case "escapes" `Quick test_json_escapes;
          Alcotest.test_case "numbers" `Quick test_json_numbers;
          Alcotest.test_case "rejects malformed" `Quick test_json_rejects;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters" `Quick test_counters;
          Alcotest.test_case "histogram quantiles" `Quick test_histogram_quantiles;
          Alcotest.test_case "quantile rank formula pinned" `Quick
            test_quantile_rank_formula;
          Alcotest.test_case "disabled layer is inert" `Quick test_disabled_is_inert;
          Alcotest.test_case "span emission" `Quick test_span_emission;
          Alcotest.test_case "report well-formed" `Quick test_report_well_formed;
        ] );
      ( "driver",
        [
          Alcotest.test_case "improve events wrapped in spans" `Quick
            test_driver_improve_spans;
          Alcotest.test_case "trace event json" `Quick test_trace_event_json;
        ] );
      ( "clock",
        [
          Alcotest.test_case "regressing source clamped" `Quick
            test_clock_regression_guard;
        ] );
      ( "sink",
        [
          Alcotest.test_case "tee and filtered composition" `Quick
            test_tee_filtered_ordering;
          Alcotest.test_case "jsonl write error reported once" `Quick
            test_jsonl_write_error_reported_once;
          Alcotest.test_case "chrome export strict JSON" `Quick
            test_chrome_export_strict_json;
        ] );
      ( "recorder",
        [
          Alcotest.test_case "span tree structure" `Quick test_recorder_tree;
          Alcotest.test_case "unbalanced end recovers" `Quick
            test_recorder_unbalanced_end;
          Alcotest.test_case "deterministic across --jobs" `Quick
            test_recorder_jobs_deterministic;
        ] );
      ( "inspect",
        [
          Alcotest.test_case "hotspots, convergence, validation" `Quick
            test_inspect_analysis;
          Alcotest.test_case "memspots and totals" `Quick test_mem_analysis;
        ] );
      ( "resource",
        [
          Alcotest.test_case "default sampler monotone" `Quick
            test_resource_sample_monotone;
          Alcotest.test_case "delta arithmetic" `Quick test_resource_delta_add;
          Alcotest.test_case "span records and counters" `Quick
            test_resource_span_records;
          Alcotest.test_case "disabled adds nothing" `Quick
            test_resource_disabled_no_fields;
          Alcotest.test_case "watermark snapshot/merge" `Quick
            test_resource_watermarks;
          Alcotest.test_case "deterministic across --jobs" `Quick
            test_resource_jobs_deterministic;
        ] );
      ( "ledger",
        [
          Alcotest.test_case "append/load round trip" `Quick test_ledger_roundtrip;
          Alcotest.test_case "strict about corruption" `Quick
            test_ledger_rejects_corruption;
          Alcotest.test_case "regress directions and floor" `Quick
            test_regress_directions_and_floor;
          Alcotest.test_case "MAD widens the gate" `Quick
            test_regress_mad_widens_gate;
          Alcotest.test_case "digest fields round-trip" `Quick
            test_ledger_digest_fields;
          Alcotest.test_case "canonical digests pinned" `Quick
            test_canonical_digests_pinned;
          Alcotest.test_case "regress groups by workload" `Quick
            test_regress_groups_by_workload;
        ] );
    ]
