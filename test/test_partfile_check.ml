(* Partfile (partition save/load) and Check (validation reports),
   plus the random-initial-partition ablation option. *)

module Hg = Hypergraph.Hgraph
module State = Partition.State
module Cost = Partition.Cost
module Check = Partition.Check
module Partfile = Netlist.Partfile

let circuit ?(cells = 120) ?(pads = 14) seed =
  Netlist.Generator.generate
    (Netlist.Generator.default_spec ~name:"pf" ~cells ~pads ~seed)

(* --- Check --------------------------------------------------------- *)

let test_check_feasible () =
  let hg = circuit 1 in
  let r = Fpart.Driver.run hg Device.xc3020 in
  let ctx = Cost.context_of Device.xc3020 ~delta:r.Fpart.Driver.delta hg in
  let report =
    Check.of_assignment hg ~k:r.Fpart.Driver.k ~assignment:r.Fpart.Driver.assignment
      ~ctx
  in
  Alcotest.(check bool) "feasible agrees" r.Fpart.Driver.feasible report.Check.feasible;
  Alcotest.(check int) "violations" 0 report.Check.violations;
  Alcotest.(check int) "cut agrees" r.Fpart.Driver.cut report.Check.cut;
  Alcotest.(check int) "one entry per block" r.Fpart.Driver.k
    (List.length report.Check.blocks)

let test_check_detects_violations () =
  let hg = circuit 2 in
  (* everything in one block: size way over a tiny cap *)
  let ctx = { Cost.s_max = 10; t_max = 5; f_max = None; m_lower = 1; total_pads = 14 } in
  let report = Check.of_assignment hg ~k:1 ~assignment:(Array.make (Hg.num_nodes hg) 0) ~ctx in
  Alcotest.(check bool) "infeasible" false report.Check.feasible;
  Alcotest.(check int) "one violating block" 1 report.Check.violations;
  match report.Check.blocks with
  | [ b ] ->
    Alcotest.(check bool) "size flagged" false b.Check.size_ok;
    Alcotest.(check bool) "pins flagged" false b.Check.pins_ok
  | _ -> Alcotest.fail "expected one block"

let test_check_ff_violation () =
  let b = Hg.Builder.create () in
  let x = Hg.Builder.add_cell b ~flops:5 ~name:"x" ~size:1 in
  let y = Hg.Builder.add_cell b ~flops:5 ~name:"y" ~size:1 in
  ignore (Hg.Builder.add_net b ~name:"n" [ x; y ]);
  let hg = Hg.Builder.freeze b in
  let ctx = { Cost.s_max = 10; t_max = 10; f_max = Some 8; m_lower = 1; total_pads = 0 } in
  let report = Check.of_assignment hg ~k:1 ~assignment:[| 0; 0 |] ~ctx in
  Alcotest.(check bool) "ff violation caught" false report.Check.feasible;
  match report.Check.blocks with
  | [ blk ] -> Alcotest.(check bool) "flops_ok false" false blk.Check.flops_ok
  | _ -> Alcotest.fail "one block expected"

let test_check_errors () =
  let hg = circuit 3 in
  let ctx = Cost.context_of Device.xc3020 ~delta:0.9 hg in
  Alcotest.check_raises "wrong length"
    (Invalid_argument "Check.of_assignment: wrong assignment length") (fun () ->
      ignore (Check.of_assignment hg ~k:2 ~assignment:[| 0 |] ~ctx));
  Alcotest.check_raises "bad block"
    (Invalid_argument "Check.of_assignment: block out of range") (fun () ->
      ignore
        (Check.of_assignment hg ~k:1
           ~assignment:(Array.make (Hg.num_nodes hg) 3)
           ~ctx))

(* --- Partfile ------------------------------------------------------ *)

let test_partfile_roundtrip () =
  let hg = circuit 4 in
  let r = Fpart.Driver.run hg Device.xc3042 in
  let pf =
    Partfile.of_assignment hg ~circuit:"pf4" ~delta:r.Fpart.Driver.delta
      ~block_devices:(Array.make r.Fpart.Driver.k "XC3042")
      ~assignment:r.Fpart.Driver.assignment
  in
  let text = Partfile.to_string pf in
  match Partfile.parse_string text with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok pf2 -> (
    Alcotest.(check string) "circuit" "pf4" pf2.Partfile.circuit;
    Alcotest.(check int) "blocks" r.Fpart.Driver.k
      (Array.length pf2.Partfile.block_devices);
    match Partfile.apply pf2 hg with
    | Error e -> Alcotest.failf "apply failed: %s" e
    | Ok (assignment, k) ->
      Alcotest.(check int) "k" r.Fpart.Driver.k k;
      Alcotest.(check (array int)) "assignment survives" r.Fpart.Driver.assignment
        assignment)

let test_partfile_file_io () =
  let hg = circuit 5 in
  let pf =
    Partfile.of_assignment hg ~circuit:"pf5" ~delta:0.9
      ~block_devices:[| "XC3020"; "XC3020" |]
      ~assignment:(Array.init (Hg.num_nodes hg) (fun v -> v land 1))
  in
  let path = Filename.temp_file "fpart_part" ".part" in
  Partfile.write_file path pf;
  (match Partfile.parse_file path with
  | Ok pf2 -> Alcotest.(check int) "nodes" (Hg.num_nodes hg)
                (List.length pf2.Partfile.assignment)
  | Error e -> Alcotest.failf "reparse: %s" e);
  Sys.remove path

let test_partfile_errors () =
  (match Partfile.parse_string "node a 0\n" with
  | Error e -> Alcotest.(check bool) "missing header" true (String.length e > 0)
  | Ok _ -> Alcotest.fail "expected error");
  (match Partfile.parse_string "circuit c\nblocks x\n" with
  | Error e ->
    Alcotest.(check bool) "bad blocks line" true
      (String.length e > 0 && String.sub e 0 4 = "line")
  | Ok _ -> Alcotest.fail "expected error");
  (* apply: unknown node *)
  let hg = circuit 6 in
  let pf =
    {
      Partfile.circuit = "c";
      delta = 0.9;
      block_devices = [| "XC3020" |];
      assignment = [ ("no_such_node", 0) ];
      node_lines = [];
    }
  in
  match Partfile.apply pf hg with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected unknown-node error"

let test_partfile_missing_node () =
  let hg = circuit 7 in
  let pf =
    {
      Partfile.circuit = "c";
      delta = 0.9;
      block_devices = [| "XC3020" |];
      assignment = [ (Hg.name hg 0, 0) ];  (* only one node listed *)
      node_lines = [];
    }
  in
  match Partfile.apply pf hg with
  | Error e -> Alcotest.(check bool) "reports missing" true (String.length e > 0)
  | Ok _ -> Alcotest.fail "expected missing-assignment error"

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let test_of_assignment_checked_errors () =
  let hg = circuit 10 in
  let n = Hg.num_nodes hg in
  (* length mismatch names both counts *)
  (match
     Partfile.of_assignment_checked hg ~circuit:"c10" ~delta:0.9
       ~block_devices:[| "XC3020" |] ~assignment:[| 0 |]
   with
  | Error e ->
    Alcotest.(check bool) "length error mentions circuit" true
      (contains ~sub:"c10" e && contains ~sub:"out of sync" e)
  | Ok _ -> Alcotest.fail "expected length error");
  (* out-of-range block names the cell *)
  let assignment = Array.make n 0 in
  assignment.(3) <- 7;
  (match
     Partfile.of_assignment_checked hg ~circuit:"c10" ~delta:0.9
       ~block_devices:[| "XC3020"; "XC3020" |] ~assignment
   with
  | Error e ->
    Alcotest.(check bool) "block error names the cell" true
      (contains ~sub:(Printf.sprintf "%S" (Hg.name hg 3)) e
      && contains ~sub:"block 7" e)
  | Ok _ -> Alcotest.fail "expected out-of-range error");
  (* raising variant keeps the message *)
  (try
     ignore
       (Partfile.of_assignment hg ~circuit:"c10" ~delta:0.9
          ~block_devices:[| "XC3020"; "XC3020" |] ~assignment);
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument e ->
     Alcotest.(check bool) "raise carries cell name" true
       (contains ~sub:(Hg.name hg 3) e))

let test_apply_line_numbered_errors () =
  let hg = circuit 11 in
  (* a parsed file whose node lines carry a bad block: the apply error
     must cite the file line of the offending entry *)
  let name0 = Hg.name hg 0 in
  let text =
    Printf.sprintf "# hdr\ncircuit c11\nblocks 2\nblock 0 device D\nnode %s 9\n"
      name0
  in
  (match Partfile.parse_string text with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok pf -> (
    match Partfile.apply pf hg with
    | Error e ->
      Alcotest.(check bool) "line-numbered" true (contains ~sub:"line 5" e);
      Alcotest.(check bool) "cell-named" true
        (contains ~sub:(Printf.sprintf "%S" name0) e)
    | Ok _ -> Alcotest.fail "expected bad-block error"));
  (* unknown node also cites its line *)
  let text2 = Printf.sprintf "circuit c11\nblocks 1\nnode ghost 0\n" in
  match Partfile.parse_string text2 with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok pf -> (
    match Partfile.apply pf hg with
    | Error e ->
      Alcotest.(check bool) "unknown node line-numbered" true
        (contains ~sub:"line 3" e && contains ~sub:"\"ghost\"" e)
    | Ok _ -> Alcotest.fail "expected unknown-node error")

(* --- random-initial ablation --------------------------------------- *)

let test_random_initial_runs_and_is_worse_or_equal () =
  let hg = circuit ~cells:400 ~pads:40 8 in
  let base = Fpart.Driver.run hg Device.xc3020 in
  let config = { Fpart.Config.default with random_initial = true } in
  let rand = Fpart.Driver.run ~config hg Device.xc3020 in
  (* random construction must never beat the constructive one here by
     more than noise; typically it is strictly worse *)
  Alcotest.(check bool) "constructive at least as good" true
    (base.Fpart.Driver.k <= rand.Fpart.Driver.k);
  (* and the run must still deliver a usable partition *)
  Alcotest.(check bool) "k sane" true (rand.Fpart.Driver.k >= rand.Fpart.Driver.m_lower)

let test_random_initial_traced () =
  let hg = circuit ~cells:200 9 in
  let config = { Fpart.Config.default with random_initial = true } in
  let r = Fpart.Driver.run ~config hg Device.xc3020 in
  let used_random =
    List.exists
      (function
        | Fpart.Trace.Bipartition { method_used = "random"; _ } -> true
        | _ -> false)
      r.Fpart.Driver.trace
  in
  Alcotest.(check bool) "trace says random" true used_random

let prop_partfile_roundtrip =
  QCheck.Test.make ~count:20 ~name:"partfile round-trips any assignment"
    QCheck.(triple (int_range 10 80) (int_range 1 5) (int_range 0 10_000))
    (fun (cells, k, seed) ->
      let hg = circuit ~cells ~pads:3 seed in
      let assignment = Array.init (Hg.num_nodes hg) (fun v -> (v * 7) mod k) in
      let pf =
        Partfile.of_assignment hg ~circuit:"q" ~delta:1.0
          ~block_devices:(Array.make k "XC3020")
          ~assignment
      in
      match Partfile.parse_string (Partfile.to_string pf) with
      | Error _ -> false
      | Ok pf2 -> (
        match Partfile.apply pf2 hg with
        | Error _ -> false
        | Ok (a, k') -> k' = k && a = assignment))

let () =
  Alcotest.run "partfile-check"
    [
      ( "check",
        [
          Alcotest.test_case "feasible report" `Quick test_check_feasible;
          Alcotest.test_case "violations" `Quick test_check_detects_violations;
          Alcotest.test_case "ff violation" `Quick test_check_ff_violation;
          Alcotest.test_case "errors" `Quick test_check_errors;
        ] );
      ( "partfile",
        [
          Alcotest.test_case "roundtrip" `Quick test_partfile_roundtrip;
          Alcotest.test_case "file io" `Quick test_partfile_file_io;
          Alcotest.test_case "errors" `Quick test_partfile_errors;
          Alcotest.test_case "missing node" `Quick test_partfile_missing_node;
          Alcotest.test_case "checked constructor errors" `Quick
            test_of_assignment_checked_errors;
          Alcotest.test_case "apply line-numbered errors" `Quick
            test_apply_line_numbered_errors;
        ] );
      ( "random-initial",
        [
          Alcotest.test_case "worse or equal" `Quick
            test_random_initial_runs_and_is_worse_or_equal;
          Alcotest.test_case "traced" `Quick test_random_initial_traced;
        ] );
      ("property", List.map QCheck_alcotest.to_alcotest [ prop_partfile_roundtrip ]);
    ]
