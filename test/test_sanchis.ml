(* Sanchis: the multi-way improvement engine behind Improve(). *)

module Hg = Hypergraph.Hgraph
module State = Partition.State
module Cost = Partition.Cost

let mk_eval ctx remainder st =
  Cost.evaluate Cost.default_params ctx st ~remainder ~step_k:1

let free_windows k = (Array.make k 0, Array.make k (max_int / 2))

let default_spec ?remainder active k =
  let lower, upper = free_windows k in
  { Sanchis.active; remainder; lower; upper }

let circuit = Fpart_testgen.circuit ~name:"sx"

let ctx_for h =
  Cost.context_of Device.xc3020 ~delta:0.9 h

let test_never_worse_value () =
  let h = circuit 3 in
  let ctx = ctx_for h in
  let st = State.create h ~k:2 ~assign:(fun v -> v land 1) in
  let eval = mk_eval ctx (Some 1) in
  let before = eval st in
  let r =
    Sanchis.improve st ~spec:(default_spec ~remainder:1 [| 0; 1 |] 2)
      ~config:Sanchis.default_config ~eval
  in
  Alcotest.(check bool) "value not worse" true
    (Cost.compare_value r.Sanchis.best before <= 0);
  Alcotest.(check bool) "state at best" true
    (Cost.compare_value (eval st) r.Sanchis.best = 0);
  match State.check st with Ok () -> () | Error e -> Alcotest.fail e

let test_matches_fm_on_two_cliques () =
  (* the crafted two-clique instance from the FM tests: Sanchis on two
     blocks must also find the single-bridge cut *)
  let h, _ = Fpart_testgen.two_cliques () in
  let ctx = { Cost.s_max = 5; t_max = 10; f_max = None; m_lower = 2; total_pads = 0 } in
  let st = State.create h ~k:2 ~assign:(fun v -> v land 1) in
  ignore
    (Sanchis.improve st ~spec:(default_spec ~remainder:1 [| 0; 1 |] 2)
       ~config:Sanchis.default_config ~eval:(mk_eval ctx (Some 1)));
  Alcotest.(check int) "bridge cut" 1 (State.cut_size st)

let test_feasible_count_never_drops () =
  let h = circuit ~cells:120 5 in
  let ctx = ctx_for h in
  (* three blocks of 40 (feasible vs s_max 57), remainder block 3 empty...
     make remainder hold the rest *)
  let st = State.create h ~k:3 ~assign:(fun v -> v mod 3) in
  let eval = mk_eval ctx (Some 2) in
  let f_before = (eval st).Cost.feasible_blocks in
  let r =
    Sanchis.improve st
      ~spec:(default_spec ~remainder:2 [| 0; 1; 2 |] 3)
      ~config:Sanchis.default_config ~eval
  in
  Alcotest.(check bool) "f monotone" true
    (r.Sanchis.best.Cost.feasible_blocks >= f_before)

let test_respects_windows () =
  let h = circuit ~cells:100 11 in
  let ctx = ctx_for h in
  let st = State.create h ~k:2 ~assign:(fun v -> if v < 50 then 0 else 1) in
  let s0 = State.size_of st 0 in
  let lower = [| s0 - 5; 0 |] and upper = [| s0 + 5; max_int / 2 |] in
  ignore
    (Sanchis.improve st
       ~spec:{ Sanchis.active = [| 0; 1 |]; remainder = Some 1; lower; upper }
       ~config:Sanchis.default_config ~eval:(mk_eval ctx (Some 1)));
  let s0' = State.size_of st 0 in
  Alcotest.(check bool) "window held" true (s0' >= s0 - 5 && s0' <= s0 + 5)

let test_inactive_blocks_untouched () =
  let h = circuit ~cells:60 13 in
  let ctx = ctx_for h in
  let st = State.create h ~k:4 ~assign:(fun v -> v mod 4) in
  let frozen3 = State.nodes_of_block st 3 in
  ignore
    (Sanchis.improve st
       ~spec:(default_spec ~remainder:1 [| 0; 1 |] 4)
       ~config:Sanchis.default_config ~eval:(mk_eval ctx (Some 1)));
  Alcotest.(check (list int)) "block 3 untouched" frozen3 (State.nodes_of_block st 3)

let test_multiblock_improves_cut () =
  let h = circuit ~cells:90 17 in
  let ctx = ctx_for h in
  (* scatter assignment: plenty to improve *)
  let st = State.create h ~k:3 ~assign:(fun v -> (v * 13) mod 3) in
  let before = State.cut_size st in
  ignore
    (Sanchis.improve st
       ~spec:(default_spec ~remainder:2 [| 0; 1; 2 |] 3)
       ~config:Sanchis.default_config ~eval:(mk_eval ctx (Some 2)));
  Alcotest.(check bool) "cut improved" true (State.cut_size st < before)

let test_stack_restarts_help_or_tie () =
  let h = circuit ~cells:80 23 in
  let ctx = ctx_for h in
  let run stack_depth =
    let st = State.create h ~k:2 ~assign:(fun v -> (v * 31) land 1) in
    let r =
      Sanchis.improve st
        ~spec:(default_spec ~remainder:1 [| 0; 1 |] 2)
        ~config:{ Sanchis.default_config with stack_depth }
        ~eval:(mk_eval ctx (Some 1))
    in
    r.Sanchis.best
  in
  let without = run 0 in
  let with_stacks = run 4 in
  Alcotest.(check bool) "stacks never hurt" true
    (Cost.compare_value with_stacks without <= 0)

let test_pads_move_through_closed_windows () =
  (* Regression for the I/O-critical fix: a pad must migrate to its
     driver's block even when the size window forbids cell moves out of
     its current block. *)
  let bld = Hg.Builder.create () in
  let c0 = Hg.Builder.add_cell bld ~name:"c0" ~size:1 in
  let c1 = Hg.Builder.add_cell bld ~name:"c1" ~size:1 in
  let c2 = Hg.Builder.add_cell bld ~name:"c2" ~size:1 in
  let c3 = Hg.Builder.add_cell bld ~name:"c3" ~size:1 in
  let p = Hg.Builder.add_pad bld ~name:"p" in
  ignore (Hg.Builder.add_net bld ~name:"n01" [ c0; c1 ]);
  ignore (Hg.Builder.add_net bld ~name:"n23" [ c2; c3 ]);
  ignore (Hg.Builder.add_net bld ~name:"np" [ p; c2 ]);
  let h = Hg.Builder.freeze bld in
  (* block 0 = {c0,c1,p}, block 1 = {c2,c3}; net np is cut *)
  let st =
    State.create h ~k:2 ~assign:(fun v -> if v = c2 || v = c3 then 1 else 0)
  in
  Alcotest.(check int) "initially cut" 1 (State.cut_size st);
  (* windows that forbid every cell move: both blocks may not shrink *)
  let spec =
    {
      Sanchis.active = [| 0; 1 |];
      remainder = Some 1;
      lower = [| 10; 10 |];
      upper = [| 10; 10 |];
    }
  in
  let ctx = { Cost.s_max = 10; t_max = 10; f_max = None; m_lower = 1; total_pads = 1 } in
  ignore
    (Sanchis.improve st ~spec ~config:Sanchis.default_config
       ~eval:(mk_eval ctx (Some 1)));
  Alcotest.(check int) "pad crossed over" 0 (State.cut_size st);
  Alcotest.(check int) "cells did not move" 2 (State.size_of st 0)

let test_pin_gain_mode () =
  let h = circuit ~cells:60 29 in
  let ctx = ctx_for h in
  let st = State.create h ~k:2 ~assign:(fun v -> v land 1) in
  let eval = mk_eval ctx (Some 1) in
  let before = eval st in
  let config = { Sanchis.default_config with gain_mode = Sanchis.Pin_gain } in
  let r =
    Sanchis.improve st ~spec:(default_spec ~remainder:1 [| 0; 1 |] 2) ~config ~eval
  in
  Alcotest.(check bool) "pin-gain mode not worse" true
    (Cost.compare_value r.Sanchis.best before <= 0);
  match State.check st with Ok () -> () | Error e -> Alcotest.fail e

let test_drift_limit () =
  let h = circuit ~cells:80 31 in
  let ctx = ctx_for h in
  let run drift_limit =
    let st = State.create h ~k:2 ~assign:(fun v -> (v * 17) land 1) in
    let eval = mk_eval ctx (Some 1) in
    let config = { Sanchis.default_config with drift_limit } in
    let r =
      Sanchis.improve st ~spec:(default_spec ~remainder:1 [| 0; 1 |] 2) ~config ~eval
    in
    (r, eval st)
  in
  let r0, v0 = run (Some 0) in
  (* drift 0 stops at the first non-improving move but still never
     returns a worse solution than the start *)
  let st_fresh = State.create h ~k:2 ~assign:(fun v -> (v * 17) land 1) in
  let start = mk_eval ctx (Some 1) st_fresh in
  Alcotest.(check bool) "drift 0 not worse than start" true
    (Cost.compare_value v0 start <= 0);
  Alcotest.(check bool) "report matches state" true
    (Cost.compare_value r0.Sanchis.best v0 = 0)

let test_invalid_specs () =
  let h = circuit 1 in
  let st = State.create h ~k:2 ~assign:(fun _ -> 0) in
  let eval = mk_eval (ctx_for h) None in
  let lower, upper = free_windows 2 in
  Alcotest.check_raises "one block"
    (Invalid_argument "Sanchis.improve: fewer than two active blocks") (fun () ->
      ignore
        (Sanchis.improve st
           ~spec:{ Sanchis.active = [| 0 |]; remainder = None; lower; upper }
           ~config:Sanchis.default_config ~eval));
  Alcotest.check_raises "repeated"
    (Invalid_argument "Sanchis.improve: repeated active block") (fun () ->
      ignore
        (Sanchis.improve st
           ~spec:{ Sanchis.active = [| 0; 0 |]; remainder = None; lower; upper }
           ~config:Sanchis.default_config ~eval));
  Alcotest.check_raises "out of range"
    (Invalid_argument "Sanchis.improve: block out of range") (fun () ->
      ignore
        (Sanchis.improve st
           ~spec:{ Sanchis.active = [| 0; 9 |]; remainder = None; lower; upper }
           ~config:Sanchis.default_config ~eval))

(* Move accounting: [moves_applied] must count exactly the events the
   [sanchis.moves] counter ticks (every applied move, rewound or not)
   and [moves_retained] exactly the surviving prefix — the report used
   to conflate the two. *)
let test_report_move_accounting () =
  let module Obs = Fpart_obs.Metrics in
  let c_moves = Obs.counter "sanchis.moves" in
  let c_rewound = Obs.counter "sanchis.rewound_moves" in
  let h = circuit ~cells:80 37 in
  let ctx = ctx_for h in
  let st = State.create h ~k:2 ~assign:(fun v -> (v * 7) land 1) in
  let eval = mk_eval ctx (Some 1) in
  let m0 = Obs.counter_value c_moves and r0 = Obs.counter_value c_rewound in
  let r =
    Sanchis.improve st ~spec:(default_spec ~remainder:1 [| 0; 1 |] 2)
      ~config:Sanchis.default_config ~eval
  in
  let applied = Obs.counter_value c_moves - m0 in
  let rewound = Obs.counter_value c_rewound - r0 in
  Alcotest.(check int) "moves_applied equals the sanchis.moves counter" applied
    r.Sanchis.moves_applied;
  Alcotest.(check int) "moves_retained = applied - rewound"
    (applied - rewound) r.Sanchis.moves_retained;
  (* the terminating pass applies moves it then rewinds, so a run that
     moved anything must have applied strictly more than it retained *)
  Alcotest.(check bool) "some moves were rewound" true
    (r.Sanchis.moves_applied > r.Sanchis.moves_retained);
  Alcotest.(check bool) "retained non-negative" true (r.Sanchis.moves_retained >= 0)

(* Every gain the delta engine writes into a bucket must agree with the
   reference oracle (the same cross-check --selfcheck paranoid wires in
   production). *)
let test_delta_gains_match_oracle () =
  let h = circuit ~cells:40 41 in
  let ctx = ctx_for h in
  let run ~pin =
    let st = State.create h ~k:2 ~assign:(fun v -> (v * 11) land 1) in
    let violations = ref 0 in
    let config =
      {
        Sanchis.default_config with
        gain_mode = (if pin then Sanchis.Pin_gain else Sanchis.Cut_gain);
        on_gain_update =
          Some
            (fun st ~cell ~target ~gain ->
              violations :=
                !violations
                + Fpart_check.Selfcheck.validate_gain st ~pin ~cell ~target
                    ~gain);
      }
    in
    ignore
      (Sanchis.improve st ~spec:(default_spec ~remainder:1 [| 0; 1 |] 2) ~config
         ~eval:(mk_eval ctx (Some 1)));
    !violations
  in
  Alcotest.(check int) "cut-gain deltas match the oracle" 0 (run ~pin:false);
  Alcotest.(check int) "pin-gain deltas match the oracle" 0 (run ~pin:true)

(* The tentpole invariant: the incremental delta-gain engine must be
   bit-identical to the recompute escape hatch — same final assignment,
   same pass/move/restart counts — across gain modes and bucket
   disciplines. *)
let prop_delta_matches_recompute =
  QCheck.Test.make ~count:30
    ~name:"delta gain engine bit-identical to recompute"
    QCheck.(
      quad (int_range 20 90) (int_range 2 4) (int_range 0 10_000)
        (pair bool bool))
    (fun (cells, k, seed, (pin, fifo)) ->
      let h = circuit ~cells seed in
      let ctx = ctx_for h in
      let remainder = k - 1 in
      let run gain_update =
        let st = State.create h ~k ~assign:(fun v -> (v * 13) mod k) in
        let eval = mk_eval ctx (Some remainder) in
        let config =
          {
            Sanchis.default_config with
            gain_update;
            gain_mode = (if pin then Sanchis.Pin_gain else Sanchis.Cut_gain);
            bucket_discipline =
              (if fifo then Gainbucket.Bucket_array.Fifo
               else Gainbucket.Bucket_array.Lifo);
            max_passes = 3;
          }
        in
        let r =
          Sanchis.improve st
            ~spec:(default_spec ~remainder (Array.init k Fun.id) k)
            ~config ~eval
        in
        (State.assignment st, r)
      in
      let a1, r1 = run Sanchis.Delta in
      let a2, r2 = run Sanchis.Recompute in
      a1 = a2
      && r1.Sanchis.passes_run = r2.Sanchis.passes_run
      && r1.Sanchis.moves_applied = r2.Sanchis.moves_applied
      && r1.Sanchis.moves_retained = r2.Sanchis.moves_retained
      && r1.Sanchis.restarts = r2.Sanchis.restarts
      && Cost.compare_value r1.Sanchis.best r2.Sanchis.best = 0)

let prop_value_monotone =
  QCheck.Test.make ~count:25 ~name:"improve never returns a worse solution"
    QCheck.(triple (int_range 20 100) (int_range 2 4) (int_range 0 10_000))
    (fun (cells, k, seed) ->
      let h = circuit ~cells seed in
      let ctx = ctx_for h in
      let st = State.create h ~k ~assign:(fun v -> v mod k) in
      let remainder = k - 1 in
      let eval = mk_eval ctx (Some remainder) in
      let before = eval st in
      let r =
        Sanchis.improve st
          ~spec:(default_spec ~remainder (Array.init k Fun.id) k)
          ~config:{ Sanchis.default_config with max_passes = 3 }
          ~eval
      in
      Cost.compare_value r.Sanchis.best before <= 0 && State.check st = Ok ())

let prop_state_matches_reported_best =
  QCheck.Test.make ~count:25 ~name:"final state evaluates to the reported best"
    QCheck.(pair (int_range 20 80) (int_range 0 10_000))
    (fun (cells, seed) ->
      let h = circuit ~cells seed in
      let ctx = ctx_for h in
      let st = State.create h ~k:2 ~assign:(fun v -> v land 1) in
      let eval = mk_eval ctx (Some 1) in
      let r =
        Sanchis.improve st
          ~spec:(default_spec ~remainder:1 [| 0; 1 |] 2)
          ~config:Sanchis.default_config ~eval
      in
      Cost.compare_value (eval st) r.Sanchis.best = 0)

let test_maintenance_driver_bit_identical () =
  (* the bench driver must apply the same scripted sequence under both
     gain-update modes: same applied count, same final assignment *)
  let h = circuit ~cells:160 7 in
  let spec = default_spec [| 0; 1; 2; 3 |] 4 in
  let run gain_update =
    let st = State.create h ~k:4 ~assign:(fun v -> v mod 4) in
    let config = { Sanchis.default_config with gain_update } in
    let applied, refresh_s =
      Sanchis.drive_gain_maintenance st ~spec ~config ~moves:2_000 ~seed:7
    in
    Alcotest.(check bool) "refresh time non-negative" true (refresh_s >= 0.0);
    (match State.check st with Ok () -> () | Error e -> Alcotest.fail e);
    (applied, Array.copy (State.assignment st))
  in
  let applied_d, assign_d = run Sanchis.Delta in
  let applied_r, assign_r = run Sanchis.Recompute in
  Alcotest.(check bool) "some moves applied" true (applied_d > 0);
  Alcotest.(check int) "same applied count" applied_r applied_d;
  Alcotest.(check (array int)) "same final assignment" assign_r assign_d

let () =
  Alcotest.run "sanchis"
    [
      ( "unit",
        [
          Alcotest.test_case "never worse" `Quick test_never_worse_value;
          Alcotest.test_case "two cliques" `Quick test_matches_fm_on_two_cliques;
          Alcotest.test_case "f never drops" `Quick test_feasible_count_never_drops;
          Alcotest.test_case "respects windows" `Quick test_respects_windows;
          Alcotest.test_case "inactive untouched" `Quick test_inactive_blocks_untouched;
          Alcotest.test_case "multiblock improves" `Quick test_multiblock_improves_cut;
          Alcotest.test_case "stack restarts" `Quick test_stack_restarts_help_or_tie;
          Alcotest.test_case "pads cross closed windows" `Quick
            test_pads_move_through_closed_windows;
          Alcotest.test_case "pin-gain mode" `Quick test_pin_gain_mode;
          Alcotest.test_case "drift limit" `Quick test_drift_limit;
          Alcotest.test_case "invalid specs" `Quick test_invalid_specs;
          Alcotest.test_case "move accounting" `Quick test_report_move_accounting;
          Alcotest.test_case "delta gains vs oracle" `Quick
            test_delta_gains_match_oracle;
          Alcotest.test_case "maintenance driver" `Quick
            test_maintenance_driver_bit_identical;
        ] );
      ( "property",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_delta_matches_recompute;
            prop_value_monotone;
            prop_state_matches_reported_best;
          ] );
    ]
