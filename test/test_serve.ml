(* The partition service: wire protocol round-trips, the engine's
   crash/cache behaviour (a bad request must never take the daemon
   down, a repeated workload must come back bit-identical from the
   cache), and the ECO warm-start contract (a Warm outcome is a
   feasible partition whose reported cost matches an oracle
   recomputation). *)

module Hg = Hypergraph.Hgraph
module State = Partition.State
module Cost = Partition.Cost
module Tg = Fpart_testgen
module Protocol = Serve.Protocol
module Engine = Serve.Engine
module Eco = Serve.Eco

let request ?(id = "r") ?(netlist = Protocol.Generate { spec = "60x8"; gen_seed = 5 })
    ?(device = "XC3042") ?delta ?(runs = 1) ?seed ?max_passes ?refiner ?timeout_s
    ?eco ?inject () =
  {
    Protocol.id;
    netlist;
    device;
    delta;
    runs;
    seed;
    max_passes;
    refiner;
    timeout_s;
    eco;
    inject;
  }

(* ------------------------------------------------------------------ *)
(* Protocol *)

let test_response_roundtrip () =
  let ok =
    {
      Protocol.resp_id = "a1";
      outcome =
        Ok
          {
            Protocol.k = 3;
            feasible = true;
            cut = 17;
            total_pins = 120;
            m_lower = 2;
            wall_ms = 4.25;
            cache = "miss";
            mode = "cold";
            netlist_digest = "0123456789abcdef0123456789abcdef";
            config_digest = "fedcba9876543210fedcba9876543210";
            partition = "CIRCUIT t\nDELTA 0.9\n0 a\n";
          };
    }
  in
  (match Protocol.response_of_line (Protocol.response_to_line ok) with
  | Ok r -> Alcotest.(check bool) "success round-trips" true (r = ok)
  | Error e -> Alcotest.failf "parse: %s" e);
  let err = { Protocol.resp_id = "a2"; outcome = Error "no such device" } in
  match Protocol.response_of_line (Protocol.response_to_line err) with
  | Ok r -> Alcotest.(check bool) "error round-trips" true (r = err)
  | Error e -> Alcotest.failf "parse: %s" e

let test_op_of_line () =
  (match Protocol.op_of_line "{\"op\":\"ping\"}" with
  | Ok Protocol.Ping -> ()
  | _ -> Alcotest.fail "ping not parsed");
  (match Protocol.op_of_line "{\"op\":\"shutdown\"}" with
  | Ok Protocol.Shutdown -> ()
  | _ -> Alcotest.fail "shutdown not parsed");
  (match
     Protocol.op_of_line
       "{\"id\":\"x\",\"netlist\":{\"generate\":\"40x6\",\"seed\":3},\"device\":\"XC2064\",\"runs\":2}"
   with
  | Ok (Protocol.Partition r) ->
    Alcotest.(check string) "id" "x" r.Protocol.id;
    Alcotest.(check int) "runs" 2 r.Protocol.runs;
    (match r.Protocol.netlist with
    | Protocol.Generate { spec; gen_seed } ->
      Alcotest.(check string) "spec" "40x6" spec;
      Alcotest.(check int) "gen seed" 3 gen_seed
    | _ -> Alcotest.fail "expected a generate source")
  | Ok _ -> Alcotest.fail "expected a partition request"
  | Error e -> Alcotest.failf "parse: %s" e);
  match Protocol.op_of_line "{\"op\":\"partition\"" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed line accepted"

(* ------------------------------------------------------------------ *)
(* Engine *)

let with_engine ?(jobs = 1) f =
  let e = Engine.create ~jobs () in
  Fun.protect ~finally:(fun () -> Engine.shutdown e) (fun () -> f e)

let success = function
  | { Protocol.outcome = Ok s; _ } -> s
  | { Protocol.resp_id; outcome = Error e } ->
    Alcotest.failf "request %s failed: %s" resp_id e

let test_engine_survives_bad_requests () =
  with_engine (fun e ->
      let reqs =
        [
          request ~id:"good" ();
          request ~id:"boom" ~inject:"crash" ();
          request ~id:"nodev" ~device:"XC9999" ();
          request ~id:"again" ();
        ]
      in
      match Engine.handle_requests e reqs with
      | [ good; boom; nodev; again ] ->
        let g = success good in
        Alcotest.(check bool) "good feasible" true g.Protocol.feasible;
        (match boom.Protocol.outcome with
        | Error msg ->
          Alcotest.(check bool) "crash reported, not raised" true
            (String.length msg > 0)
        | Ok _ -> Alcotest.fail "injected crash returned Ok");
        (match nodev.Protocol.outcome with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "unknown device accepted");
        let a = success again in
        Alcotest.(check int) "engine kept serving" g.Protocol.k a.Protocol.k;
        Alcotest.(check int) "served counts all four" 4 (Engine.served e)
      | rs -> Alcotest.failf "expected 4 responses, got %d" (List.length rs))

let test_cache_hit_bit_identical () =
  with_engine (fun e ->
      let cold = success (List.hd (Engine.handle_requests e [ request () ])) in
      Alcotest.(check string) "first sight misses" "miss" cold.Protocol.cache;
      let warm = success (List.hd (Engine.handle_requests e [ request () ])) in
      Alcotest.(check string) "second sight hits" "hit" warm.Protocol.cache;
      Alcotest.(check string) "bit-identical partition" cold.Protocol.partition
        warm.Protocol.partition;
      Alcotest.(check int) "same cut" cold.Protocol.cut warm.Protocol.cut;
      Alcotest.(check bool) "one hit counted" true (Engine.cache_hits e >= 1);
      (* same workload inside one batch: the duplicate must replay, not
         recompute *)
      let rs = Engine.handle_requests e [ request ~id:"d1" ~seed:4 ();
                                          request ~id:"d2" ~seed:4 () ] in
      match List.map success rs with
      | [ d1; d2 ] ->
        Alcotest.(check string) "intra-batch duplicate hits" "hit" d2.Protocol.cache;
        Alcotest.(check string) "intra-batch duplicate identical"
          d1.Protocol.partition d2.Protocol.partition
      | _ -> Alcotest.fail "expected 2 responses")

let test_all_crash_batch_then_recovery () =
  with_engine (fun e ->
      let crash id = request ~id ~inject:"crash" () in
      let rs = Engine.handle_requests e [ crash "c1"; crash "c2"; crash "c3" ] in
      Alcotest.(check int) "three responses" 3 (List.length rs);
      List.iter
        (fun r ->
          match r.Protocol.outcome with
          | Error _ -> ()
          | Ok _ -> Alcotest.fail "crash slot returned Ok")
        rs;
      let after = success (List.hd (Engine.handle_requests e [ request () ])) in
      Alcotest.(check bool) "next request still answered" true
        after.Protocol.feasible)

(* ------------------------------------------------------------------ *)
(* ECO warm start *)

(* Random-but-valid edit of a generated circuit: remove one cell, add
   one cell wired to a survivor. *)
let random_delta hg seed =
  let n = Hg.num_nodes hg in
  let rng = Prng.Splitmix.create seed in
  let pick () = Prng.Splitmix.int rng n in
  let rec cell tries =
    let v = pick () in
    if (not (Hg.is_pad hg v)) && tries < 50 then v
    else if tries >= 50 then 0
    else cell (tries + 1)
  in
  let removed = cell 0 in
  let rec survivor tries =
    let v = cell 0 in
    if v <> removed || tries > 50 then v else survivor (tries + 1)
  in
  let anchor = survivor 0 in
  {
    Netlist.Delta.empty with
    Netlist.Delta.remove_nodes = [ Hg.name hg removed ];
    add_cells = [ { Netlist.Delta.cell_name = "eco_new"; size = 1; flops = 0 } ];
    add_nets =
      [
        {
          Netlist.Delta.net_name = "eco_net";
          pins = [ "eco_new"; Hg.name hg anchor ];
        };
      ];
  }

let prop_eco_warm_is_feasible_and_consistent =
  QCheck.Test.make ~count:15
    ~name:"ECO Warm outcome is feasible and matches an oracle recount"
    QCheck.(pair (int_range 60 160) (int_range 0 1000))
    (fun (cells, seed) ->
      let hg = Tg.circuit ~name:"eco" ~cells ~pads:(max 4 (cells / 12)) seed in
      let device = Device.xc3042 in
      let config = Fpart.Config.default in
      let cold = Fpart.Driver.run ~config hg device in
      let pf =
        Netlist.Partfile.of_assignment hg ~circuit:"eco" ~delta:cold.Fpart.Driver.delta
          ~block_devices:(Array.make cold.Fpart.Driver.k device.Device.dev_name)
          ~assignment:cold.Fpart.Driver.assignment
      in
      let d = random_delta hg (seed + 1) in
      match Netlist.Delta.apply d hg with
      | Error e -> QCheck.Test.fail_reportf "delta apply: %s" e
      | Ok hg' -> (
        match Eco.relegalize ~config ~device ~partfile:pf hg' with
        | Error e -> QCheck.Test.fail_reportf "relegalize: %s" e
        | Ok (Eco.Cold_needed _) -> true (* honest fallback is always legal *)
        | Ok (Eco.Warm { assignment; k; cut; total_pins; m_lower = _; projection = _ }) ->
          let st = State.create hg' ~k ~assign:(fun v -> assignment.(v)) in
          let ctx =
            Cost.context_of device
              ~delta:(Option.value config.Fpart.Config.delta ~default:0.9)
              hg'
          in
          (match Cost.classify ctx st with
          | Cost.Feasible -> ()
          | _ -> QCheck.Test.fail_reportf "Warm outcome is not feasible");
          cut = State.cut_size st && total_pins = State.total_pins st))

let test_eco_warm_beats_cold_via_engine () =
  (* differential: the same delta'd workload served cold and via the
     ECO path must both be feasible, and the ECO response must say so *)
  let hg = Tg.circuit ~name:"ecoe" ~cells:140 ~pads:12 3 in
  let device = Device.xc3042 in
  let cold = Fpart.Driver.run hg device in
  let pf =
    Netlist.Partfile.of_assignment hg ~circuit:"ecoe" ~delta:cold.Fpart.Driver.delta
      ~block_devices:(Array.make cold.Fpart.Driver.k device.Device.dev_name)
      ~assignment:cold.Fpart.Driver.assignment
  in
  let d = random_delta hg 17 in
  match Netlist.Delta.apply d hg with
  | Error e -> Alcotest.failf "delta apply: %s" e
  | Ok hg' -> (
    let config = Fpart.Config.default in
    match Eco.relegalize ~config ~device ~partfile:pf hg' with
    | Error e -> Alcotest.failf "relegalize: %s" e
    | Ok (Eco.Cold_needed reason) ->
      Alcotest.failf "small edit should warm-start (got fallback: %s)" reason
    | Ok (Eco.Warm { k; projection; _ }) ->
      Alcotest.(check bool) "k unchanged or close" true
        (abs (k - cold.Fpart.Driver.k) <= 1);
      Alcotest.(check bool) "projection mostly matched" true
        (projection.Eco.matched > projection.Eco.stale))

(* ------------------------------------------------------------------ *)
(* telemetry plane: stats/health ops, cache accounting, access log and
   request-id stamping *)

module Server = Serve.Server
module Json = Fpart_obs.Json
module Sink = Fpart_obs.Sink

let json_of_line line =
  match Json.of_string line with
  | Ok j -> j
  | Error e -> Alcotest.failf "unparseable response line: %s" e

let test_stats_and_health_ops () =
  with_engine (fun e ->
      ignore (Engine.handle_requests e [ request () ]);
      (match Server.react e "{\"op\":\"health\"}" with
      | Server.Lines [ line ] ->
        let j = json_of_line line in
        Alcotest.(check bool) "health status ok" true
          (Json.member "status" j = Some (Json.Str "ok"));
        Alcotest.(check bool) "health reports served" true
          (Json.member "served" j = Some (Json.Int 1))
      | _ -> Alcotest.fail "health did not answer one line");
      match Server.react e "{\"op\":\"stats\"}" with
      | Server.Lines [ line ] -> (
        let j = json_of_line line in
        Alcotest.(check bool) "stats op tag" true
          (Json.member "op" j = Some (Json.Str "stats"));
        match Json.member "cache" j with
        | Some cache ->
          Alcotest.(check bool) "one cached entry" true
            (Json.member "entries" cache = Some (Json.Int 1));
          (match Json.member "bytes_est" cache with
          | Some (Json.Int b) ->
            Alcotest.(check bool) "cache bytes estimated" true (b > 0)
          | _ -> Alcotest.fail "stats cache has no bytes_est")
        | None -> Alcotest.fail "stats without a cache object")
      | _ -> Alcotest.fail "stats did not answer one line")

let test_cache_warning_fires_once () =
  let warnings = ref [] in
  let e =
    Engine.create ~cache_warn_mb:0.000001
      ~warn:(fun m -> warnings := m :: !warnings)
      ~jobs:1 ()
  in
  Fun.protect
    ~finally:(fun () -> Engine.shutdown e)
    (fun () ->
      ignore (Engine.handle_requests e [ request () ]);
      Alcotest.(check int) "one entry" 1 (Engine.cache_entries e);
      Alcotest.(check bool) "bytes estimated" true
        (Engine.cache_bytes_est e > 0);
      Alcotest.(check int) "warning fired" 1 (List.length !warnings);
      (* growth continues, the warning does not repeat *)
      ignore (Engine.handle_requests e [ request ~seed:9 () ]);
      Alcotest.(check int) "two entries" 2 (Engine.cache_entries e);
      Alcotest.(check int) "warning is one-shot" 1 (List.length !warnings))

(* The acceptance pair: the same engine-minted request id must appear
   in the access-log record and as the ["req"] attr on the recorder
   spans serving that request. *)
let test_access_log_and_request_stamp () =
  Fpart_obs.Metrics.set_enabled true;
  let sink, recorded = Sink.memory () in
  Sink.set sink;
  let logs = ref [] in
  let e = Engine.create ~access:(fun j -> logs := j :: !logs) ~jobs:1 () in
  Fun.protect
    ~finally:(fun () ->
      Engine.shutdown e;
      Sink.set Sink.null;
      Fpart_obs.Recorder.reset ())
    (fun () ->
      ignore
        (Engine.handle_requests e
           [ request ~id:"a" (); request ~id:"dup" (); request ~id:"bad" ~device:"XC9999" () ]);
      let logs = List.rev !logs in
      Alcotest.(check int) "one access record per request" 3 (List.length logs);
      let field k j =
        match Json.member k j with
        | Some (Json.Str s) -> s
        | _ -> Alcotest.failf "access record missing %s" k
      in
      (* records emit at completion time (a prepare failure logs before
         the batch fan-out finishes), so find them by client id *)
      let by_id id =
        match List.find_opt (fun j -> field "id" j = id) logs with
        | Some j -> j
        | None -> Alcotest.failf "no access record for %s" id
      in
      let a = by_id "a" and dup = by_id "dup" and bad = by_id "bad" in
      Alcotest.(check string) "rids are minted in request order" "r000001"
        (field "rid" a);
      Alcotest.(check string) "client id preserved" "a" (field "id" a);
      Alcotest.(check string) "cold mode" "cold" (field "mode" a);
      Alcotest.(check string) "duplicate replays as hit" "hit" (field "mode" dup);
      Alcotest.(check string) "errors are logged too" "error" (field "status" bad);
      Alcotest.(check bool) "ok record carries cut and k" true
        (Json.member "cut" a <> None && Json.member "k" a <> None);
      (* the same rid stamps the recorder spans of that request *)
      let spans_of rid =
        List.filter
          (fun j ->
            Json.member "req" j = Some (Json.Str rid)
            && Json.member "type" j = Some (Json.Str "span"))
          (recorded ())
      in
      Alcotest.(check bool) "request a's spans carry its rid" true
        (List.length (spans_of (field "rid" a)) >= 1);
      Alcotest.(check bool) "request dup's spans carry its rid" true
        (List.length (spans_of (field "rid" dup)) >= 1))

let () =
  Alcotest.run "serve"
    [
      ( "protocol",
        [
          Alcotest.test_case "response round-trip" `Quick test_response_roundtrip;
          Alcotest.test_case "op parsing" `Quick test_op_of_line;
        ] );
      ( "engine",
        [
          Alcotest.test_case "bad requests never kill the engine" `Quick
            test_engine_survives_bad_requests;
          Alcotest.test_case "cache hit is bit-identical" `Quick
            test_cache_hit_bit_identical;
          Alcotest.test_case "all-crash batch then recovery" `Quick
            test_all_crash_batch_then_recovery;
        ] );
      ( "eco",
        [
          Alcotest.test_case "stats and health ops" `Quick
            test_stats_and_health_ops;
          Alcotest.test_case "cache warning fires once" `Quick
            test_cache_warning_fires_once;
          Alcotest.test_case "access log and request stamp agree" `Quick
            test_access_log_and_request_stamp;
          Alcotest.test_case "warm start on a small edit" `Quick
            test_eco_warm_beats_cold_via_engine;
        ] );
      ( "property",
        List.map QCheck_alcotest.to_alcotest
          [ prop_eco_warm_is_feasible_and_consistent ] );
    ]
