(* Shared test-data builders and QCheck generators for the FPART test
   suite.  Every test executable builds its circuits, partitions and
   move sequences through this library instead of keeping a private
   copy of the helpers — one place to fix, one vocabulary of shapes.

   All randomness is drawn from the in-tree SplitMix64 generator so a
   single integer seed reproduces any generated instance. *)

module Hg = Hypergraph.Hgraph
module Sm = Prng.Splitmix

(* ------------------------------------------------------------------ *)
(* Deterministic circuit builders                                      *)

let circuit ?(name = "t") ?(cells = 60) ?(pads = 6) seed =
  Netlist.Generator.generate
    (Netlist.Generator.default_spec ~name ~cells ~pads ~seed)

(* Two 4-cliques joined by a single bridge net; the optimal bipartition
   cuts exactly that bridge.  Returns the graph and the cell ids in
   construction order (clique 1 = indices 0-3, clique 2 = 4-7). *)
let two_cliques () =
  let b = Hg.Builder.create () in
  let c =
    Array.init 8 (fun i -> Hg.Builder.add_cell b ~name:(string_of_int i) ~size:1)
  in
  let clique lo =
    for i = lo to lo + 3 do
      for j = i + 1 to lo + 3 do
        ignore
          (Hg.Builder.add_net b ~name:(Printf.sprintf "e%d_%d" i j) [ c.(i); c.(j) ])
      done
    done
  in
  clique 0;
  clique 4;
  ignore (Hg.Builder.add_net b ~name:"bridge" [ c.(3); c.(4) ]);
  (Hg.Builder.freeze b, c)

(* A synthetic device with the given block constraints (family is
   immaterial for the partitioners). *)
let tiny_device ~s_max ~t_max =
  {
    Device.dev_name = Printf.sprintf "T%dx%d" s_max t_max;
    family = Device.XC3000;
    s_ds = s_max;
    t_max;
  }

(* ------------------------------------------------------------------ *)
(* Assignments and move sequences                                      *)

(* Enumerate every assignment of [n] nodes into [k] blocks. *)
let iter_assignments n k f =
  let assign = Array.make n 0 in
  let rec go i =
    if i = n then f assign
    else
      for b = 0 to k - 1 do
        assign.(i) <- b;
        go (i + 1)
      done
  in
  go 0

let random_assignment ~n ~k seed =
  let rng = Sm.create seed in
  Array.init n (fun _ -> Sm.int rng k)

(* [count] random moves legal from [init]: each picks a node and a
   destination different from the node's block at that point of the
   sequence. *)
let random_moves ~init ~k ~count seed =
  if k < 2 then invalid_arg "Fpart_testgen.random_moves: k < 2";
  let assign = Array.copy init in
  let n = Array.length assign in
  let rng = Sm.create seed in
  List.init count (fun _ ->
      let v = Sm.int rng n in
      let dest = (assign.(v) + 1 + Sm.int rng (k - 1)) mod k in
      assign.(v) <- dest;
      (v, dest))

(* ------------------------------------------------------------------ *)
(* Node relabelings (metamorphic tests)                                *)

(* A uniformly random permutation of [0, n). *)
let permutation ~n seed =
  let p = Array.init n Fun.id in
  Sm.shuffle (Sm.create seed) p;
  p

(* A permutation that moves only the pad nodes of [hg] (identity on
   cells) — for pad-order invariance properties. *)
let pad_permutation hg seed =
  let n = Hg.num_nodes hg in
  let pads = ref [] in
  Hg.iter_nodes (fun v -> if Hg.is_pad hg v then pads := v :: !pads) hg;
  let pads = Array.of_list (List.rev !pads) in
  let shuffled = Array.copy pads in
  Sm.shuffle (Sm.create seed) shuffled;
  let perm = Array.init n Fun.id in
  Array.iteri (fun i p -> perm.(p) <- shuffled.(i)) pads;
  perm

(* [relabel hg ~perm] rebuilds [hg] with node [v] renumbered to
   [perm.(v)] (names, sizes, flops and net order preserved).
   @raise Invalid_argument if [perm] maps a cell position to a pad
   position or vice versa — node kinds must be stable under the
   relabeling. *)
let relabel hg ~perm =
  let n = Hg.num_nodes hg in
  if Array.length perm <> n then invalid_arg "Fpart_testgen.relabel: wrong length";
  let inv = Array.make n (-1) in
  Array.iteri
    (fun old nw ->
      if nw < 0 || nw >= n || inv.(nw) >= 0 then
        invalid_arg "Fpart_testgen.relabel: not a permutation";
      inv.(nw) <- old)
    perm;
  let b = Hg.Builder.create () in
  for nw = 0 to n - 1 do
    let old = inv.(nw) in
    let id =
      match Hg.kind hg old with
      | Hg.Cell ->
        Hg.Builder.add_cell b ~flops:(Hg.flops hg old) ~name:(Hg.name hg old)
          ~size:(Hg.size hg old)
      | Hg.Pad -> Hg.Builder.add_pad b ~name:(Hg.name hg old)
    in
    if id <> nw then invalid_arg "Fpart_testgen.relabel: kinds not stable"
  done;
  Hg.iter_nets
    (fun e ->
      ignore
        (Hg.Builder.add_net b ~name:(Hg.net_name hg e)
           (Array.to_list (Array.map (fun v -> perm.(v)) (Hg.pins hg e)))))
    hg;
  Hg.Builder.freeze b

(* Transport an assignment through a relabeling: if [a] assigns on the
   original graph, the result assigns on [relabel hg ~perm]. *)
let transport ~perm a =
  let r = Array.make (Array.length a) 0 in
  Array.iteri (fun old b -> r.(perm.(old)) <- b) a;
  r

(* ------------------------------------------------------------------ *)
(* QCheck generators (with shrinking)                                  *)

(* A scene is everything a differential property needs: a circuit
   recipe, a block count and a seed for derived randomness (initial
   assignments, move sequences). *)
type scene = { sc_cells : int; sc_pads : int; sc_k : int; sc_seed : int }

let scene_graph sc = circuit ~cells:sc.sc_cells ~pads:sc.sc_pads sc.sc_seed

let scene_init sc =
  let n = Hg.num_nodes (scene_graph sc) in
  random_assignment ~n ~k:sc.sc_k (sc.sc_seed lxor 0x9e3779b9)

let scene_moves ?(per_node = 2) sc =
  let hg = scene_graph sc in
  let init = scene_init sc in
  random_moves ~init ~k:sc.sc_k
    ~count:(per_node * Hg.num_nodes hg)
    (sc.sc_seed lxor 0x51f15eed)

let print_scene sc =
  Printf.sprintf "{cells=%d; pads=%d; k=%d; seed=%d}" sc.sc_cells sc.sc_pads
    sc.sc_k sc.sc_seed

(* Shrinks towards the smallest legal instance (and seed 0) so failing
   counterexamples arrive minimized. *)
let arb_scene ?(min_cells = 8) ?(max_cells = 120) ?(max_k = 4) () =
  let open QCheck in
  let gen =
    Gen.map
      (fun (((cells, pads), k), seed) ->
        { sc_cells = cells; sc_pads = pads; sc_k = k; sc_seed = seed })
      Gen.(
        pair
          (pair (pair (int_range min_cells max_cells) (int_range 2 24)) (int_range 2 max_k))
          (int_range 0 0x3FFFFFFF))
  in
  let shrink sc yield =
    Shrink.int sc.sc_cells (fun c -> if c >= min_cells then yield { sc with sc_cells = c });
    Shrink.int sc.sc_pads (fun p -> if p >= 2 then yield { sc with sc_pads = p });
    Shrink.int sc.sc_k (fun k -> if k >= 2 then yield { sc with sc_k = k });
    Shrink.int sc.sc_seed (fun s -> yield { sc with sc_seed = s })
  in
  make ~print:print_scene ~shrink gen

(* A small explicit flow network for brute-force max-flow/min-cut
   differentials: node 0 is the source, node [fn_nodes - 1] the sink,
   each edge a directed (src, dst, cap) triple (parallel edges and
   capacity 0 allowed, self-loops never generated). *)
type flownet_spec = { fn_nodes : int; fn_edges : (int * int * int) list }

let print_flownet fn =
  Printf.sprintf "{nodes=%d; edges=[%s]}" fn.fn_nodes
    (String.concat "; "
       (List.map
          (fun (s, d, c) -> Printf.sprintf "%d->%d/%d" s d c)
          fn.fn_edges))

(* Shrinks by dropping edges and reducing capacities; the node count is
   never shrunk so edge endpoints stay in range. *)
let arb_flownet ?(max_nodes = 12) ?(max_cap = 9) () =
  let open QCheck in
  let gen =
    Gen.(
      int_range 2 max_nodes >>= fun n ->
      let edge =
        map3
          (fun s d c ->
            let d = if d >= s then d + 1 else d in
            (s, d, c))
          (int_range 0 (n - 1))
          (int_range 0 (n - 2))
          (int_range 1 max_cap)
      in
      map
        (fun edges -> { fn_nodes = n; fn_edges = edges })
        (list_size (int_range 0 (3 * n)) edge))
  in
  let shrink fn yield =
    Shrink.list
      ~shrink:(fun (s, d, c) yield ->
        Shrink.int c (fun c' -> if c' >= 0 then yield (s, d, c')))
      fn.fn_edges
      (fun edges -> yield { fn with fn_edges = edges })
  in
  make ~print:print_flownet ~shrink gen

(* Device constraint pairs (S_MAX, T_MAX), shrinking towards the
   tightest still-legal device. *)
let arb_device ?(max_s = 64) ?(max_t = 64) () =
  let open QCheck in
  make
    ~print:(fun (s, t) -> Printf.sprintf "s_max=%d t_max=%d" s t)
    ~shrink:(fun (s, t) yield ->
      Shrink.int s (fun s' -> if s' >= 2 then yield (s', t));
      Shrink.int t (fun t' -> if t' >= 4 then yield (s, t')))
    Gen.(pair (int_range 2 max_s) (int_range 4 max_t))
